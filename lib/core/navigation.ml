type neighborhood = {
  entity : Entity.t;
  as_source : (Entity.t * Entity.t list) list;
  as_target : (Entity.t * Entity.t list) list;
  as_relationship : (Entity.t * Entity.t) list;
}

let group_by_relationship symtab pairs =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun (r, other) ->
      let cell =
        match Hashtbl.find_opt tbl r with
        | Some cell -> cell
        | None ->
            let cell = ref [] in
            Hashtbl.add tbl r cell;
            cell
      in
      cell := other :: !cell)
    pairs;
  let name = Symtab.name symtab in
  let groups = Hashtbl.fold (fun r cell acc -> (r, List.rev !cell) :: acc) tbl [] in
  (* Membership first (it answers "what is this entity?"), then
     generalization, then the rest alphabetically — the §4.1 tables lead
     with the entity's classes. *)
  let rank r =
    if r = Entity.member then 0 else if r = Entity.gen then 1 else 2
  in
  List.sort
    (fun (r1, _) (r2, _) ->
      let c = Int.compare (rank r1) (rank r2) in
      if c <> 0 then c else String.compare (name r1) (name r2))
    groups
  |> List.map (fun (r, others) ->
         (r, List.sort (fun a b -> String.compare (name a) (name b)) others))

let neighborhood ?(opts = Match_layer.nav_opts) ?(derived = true) db entity =
  let symtab = Database.symtab db in
  let keep fact = derived || Database.mem_base db fact in
  let sources = ref [] and targets = ref [] and rels = ref [] in
  Match_layer.candidates ~opts db (Store.pattern ~s:entity ()) (fun fact ->
      if keep fact then sources := (fact.r, fact.t) :: !sources);
  Match_layer.candidates ~opts db (Store.pattern ~t:entity ()) (fun fact ->
      if keep fact && not (Entity.equal fact.s entity) then
        targets := (fact.r, fact.s) :: !targets);
  Match_layer.candidates ~opts db (Store.pattern ~r:entity ()) (fun fact ->
      if keep fact then rels := (fact.s, fact.t) :: !rels);
  {
    entity;
    as_source = group_by_relationship symtab (List.rev !sources);
    as_target = group_by_relationship symtab (List.rev !targets);
    as_relationship = List.rev !rels;
  }

let try_entity ?(opts = Match_layer.nav_opts) db entity =
  let seen = Fact.Tbl.create 32 in
  (* Each position group is sorted: the backends enumerate in different
     orders (the eager index by hash, the demand cones by Fact.compare),
     and the listing must not depend on which one answered. First-seen
     dedup across groups is order-independent because a fact's group is
     decided by the pattern it matches, not by enumeration order. *)
  let collect pattern =
    let group = ref [] in
    Match_layer.candidates ~opts db pattern (fun fact ->
        if not (Fact.Tbl.mem seen fact) then begin
          Fact.Tbl.add seen fact ();
          group := fact :: !group
        end);
    List.sort Fact.compare !group
  in
  let as_source = collect (Store.pattern ~s:entity ()) in
  let as_rel = collect (Store.pattern ~r:entity ()) in
  let as_target = collect (Store.pattern ~t:entity ()) in
  as_source @ as_rel @ as_target

(* Associations are assembled from two sources so truncation is
   observable: the direct relationships come from the match layer with
   composition disabled, the composed ones straight from
   Composition.search, whose [truncated] flag survives (the match
   layer's answer cache replays facts but not callbacks, so the flag
   cannot flow through it). The emission order — closure facts first,
   then composed paths in search order, deduplicated first-seen — is
   exactly what the single candidates call produced before. *)
let associations_detailed ?(opts = Match_layer.nav_opts) db ~src ~tgt =
  let seen = Hashtbl.create 16 in
  let out = ref [] in
  let emit r =
    if not (Hashtbl.mem seen r) then begin
      Hashtbl.add seen r ();
      out := r :: !out
    end
  in
  Match_layer.candidates
    ~opts:{ opts with Match_layer.composition = false }
    db
    (Store.pattern ~s:src ~t:tgt ())
    (fun fact -> emit fact.r);
  let truncated =
    if opts.Match_layer.composition then begin
      let result = Composition.search db ~src ~tgt in
      let symtab = Database.symtab db in
      List.iter
        (fun (p : Composition.path) -> emit (Composition.compose_name symtab p.chain))
        result.Composition.paths;
      result.Composition.truncated
    end
    else false
  in
  (List.rev !out, truncated)

let associations ?opts db ~src ~tgt = fst (associations_detailed ?opts db ~src ~tgt)

(* Process-wide: star templates can be parsed from several domains at
   once (parallel rendering), so the counter must be atomic — a plain ref
   loses increments under contention and hands two templates the same
   variable. *)
let fresh_counter = Atomic.make 0
let fresh_var () = Printf.sprintf "*%d" (Atomic.fetch_and_add fresh_counter 1 + 1)

let star_term db spec =
  if String.equal spec "*" then Template.Var (fresh_var ())
  else if String.length spec > 1 && spec.[0] = '?' then
    Template.Var (String.sub spec 1 (String.length spec - 1))
  else Template.Ent (Database.entity db spec)

let star_template db (s, r, t) =
  Template.make (star_term db s) (star_term db r) (star_term db t)

let render_source_table ?derived db entity =
  let symtab = Database.symtab db in
  let nbhd = neighborhood ?derived db entity in
  let name = Symtab.name symtab in
  let cols =
    List.map (fun (r, others) -> (name r, List.map name others)) nbhd.as_source
  in
  Pretty.columns ~title:(Printf.sprintf "%s, *, *" (name entity)) cols

let truncation_warning =
  "warning: path enumeration hit the max_paths cap; composed associations \
   may be missing"

let render_associations db ~src ~tgt =
  let symtab = Database.symtab db in
  let name = Symtab.name symtab in
  let rels, truncated = associations_detailed db ~src ~tgt in
  let table =
    Pretty.column
      ~title:(Printf.sprintf "%s, *, %s" (name src) (name tgt))
      (List.map name rels)
  in
  if truncated then table ^ truncation_warning else table

(* Two-entity templates — the (X, *, Y) and (X, ?r, Y) shapes —
   enumerate composition paths, which the max_paths cap may silently cut
   short; re-run the (now cheap, bidirectional) search for its truncated
   flag so the rendering can warn. *)
let template_truncated ~opts db tpl =
  match (tpl.Template.src, tpl.Template.rel, tpl.Template.tgt) with
  | Template.Ent src, Template.Var _, Template.Ent tgt
    when opts.Match_layer.composition && not (Entity.equal src tgt) ->
      (Composition.search db ~src ~tgt).Composition.truncated
  | _ -> false

let render_template ?(opts = Match_layer.nav_opts) db tpl =
  let symtab = Database.symtab db in
  let title = Template.to_string symtab tpl in
  let answer = Eval.eval ~opts db (Query.atom tpl) in
  let warn rendered =
    if template_truncated ~opts db tpl then rendered ^ truncation_warning
    else rendered
  in
  warn
  @@
  match answer.Eval.vars with
  | [] ->
      Pretty.column ~title [ (if answer.Eval.rows <> [] then "true" else "false") ]
  | [ _ ] ->
      let cells =
        Eval.column answer
        |> List.map (Symtab.name symtab)
        |> List.sort String.compare
      in
      Pretty.column ~title cells
  | [ v1; v2 ] ->
      (* Two free variables: group the second variable's values under
         each value of the first — the paper's two-dimensional table. *)
      let groups = Hashtbl.create 16 in
      List.iter
        (fun row ->
          let key = Symtab.name symtab row.(0) in
          let value = Symtab.name symtab row.(1) in
          Hashtbl.replace groups key
            (value :: Option.value ~default:[] (Hashtbl.find_opt groups key)))
        answer.Eval.rows;
      let rows =
        Hashtbl.fold
          (fun key values acc ->
            [ key; String.concat ", " (List.sort String.compare values) ] :: acc)
          groups []
        |> List.sort compare
      in
      Pretty.grid ~title ~headers:[ v1; v2 ] rows
  | vars ->
      Pretty.grid ~title ~headers:vars
        (List.sort compare (Eval.rows_named symtab answer))

type session = {
  db : Database.t;
  mutable trail : Entity.t list;  (* most recent first *)
}

let start db = { db; trail = [] }
let database session = session.db

let visit session entity =
  session.trail <- entity :: session.trail;
  neighborhood session.db entity

let back session =
  match session.trail with
  | [] -> None
  | [ _ ] ->
      session.trail <- [];
      None
  | _ :: previous :: rest ->
      session.trail <- previous :: rest;
      Some previous

let current session = match session.trail with [] -> None | e :: _ -> Some e
let history session = session.trail
