(** The sharded counterpart of {!Closure}'s single-heap implementation:
    both strata (inversion stage, main rules) run as
    {!Lsdb_datalog.Sharded} evaluations that read {e through} the store
    rather than copying it into per-stratum indexes — the main stratum's
    base view is the store plus the stage overlays, so stage consequences
    are base-tier facts for the main rules with no provenance mirroring
    and no reload.

    Content contract: for any store, rule set and shard count, the fact
    set, the derived set and the base/derived split are identical to the
    single-heap {!Closure}'s; enumeration and derivation {e order} are
    not (identity gates compare canonically sorted sets). For a fixed
    shard count the result is byte-identical at every pool size.

    This module is not used directly — {!Closure} dispatches here when
    the owning database has [shards > 1]. *)

type t

exception Diverged of int

val compute :
  ?max_facts:int ->
  ?pool:Lsdb_exec.Pool.t ->
  ?gov:Lsdb_exec.Governor.t ->
  ?staged_rules:Lsdb_datalog.Rule.t list ->
  rules:Lsdb_datalog.Rule.t list ->
  shards:int ->
  Store.t ->
  t

val extend :
  ?pool:Lsdb_exec.Pool.t ->
  ?gov:Lsdb_exec.Governor.t ->
  t ->
  Fact.t list ->
  t

val retract :
  ?pool:Lsdb_exec.Pool.t ->
  ?gov:Lsdb_exec.Governor.t ->
  t ->
  Fact.t list ->
  t

val support_size : t -> int

val set_rules :
  t -> staged_rules:Lsdb_datalog.Rule.t list -> rules:Lsdb_datalog.Rule.t list -> unit

val closed_under : t -> Lsdb_datalog.Rule.t list -> bool
val mem : t -> Fact.t -> bool
val cardinal : t -> int

(** Always [Store.cardinal] of the owning store — O(1), never a shadow
    counter, so extending with a duplicate or retracting a non-member
    cannot drift it. *)
val base_cardinal : t -> int
val derived : t -> Fact.t list
val derived_count : t -> int
val is_derived : t -> Fact.t -> bool
val provenance : t -> Fact.t -> (string * Fact.t list) option
val rounds : t -> int
val rule_counts : t -> (string * int) list
val iter : (Fact.t -> unit) -> t -> unit
val to_seq : t -> Fact.t Seq.t
val match_pattern : t -> Store.pattern -> (Fact.t -> unit) -> unit
val match_list : t -> Store.pattern -> Fact.t list
val count_matches : t -> Store.pattern -> int
val count_pattern : t -> Store.pattern -> int
val out_degree : t -> Entity.t -> int
val in_degree : t -> Entity.t -> int
val exists_match : t -> Store.pattern -> bool
val active_entities : t -> Entity.t Seq.t
val entity_active : t -> Entity.t -> bool
val prepare_readers : t -> unit

(** {1 Shard introspection (B20, shell [.stats])} *)

val shards : t -> int

(** Live derived facts per shard, stage and main overlays summed. *)
val overlay_cardinals : t -> int array

(** Cross-shard deltas routed at round barriers so far, both strata. *)
val exchanged : t -> int

(** Frozen/delta tier sizes summed over both strata's overlays. *)
val tier_stats : t -> Lsdb_datalog.Index.tier_stats

(** The main stratum's reshard hint, falling back to the stage's. *)
val reshard_hint : t -> (int * int * int) option
