(** The broadness structure (§5.1): the generalization hierarchy of the
    closure, with *minimal generalizations* — the covers of the [⊑] partial
    order — precomputed.

    The closure is already transitively closed under [⊑] (the §3.1 rules
    include transitivity), so an entity's generalization set can be read
    off directly; covers are those not reachable through a third strictly
    intermediate entity, exactly the paper's definition. Entities with no
    stored generalization have [Δ] as their only minimal generalization;
    entities with no stored specialization have [∇] (§2.3's virtual
    extremes). *)

type t

(** Snapshot of the database's current closure. *)
val compute : Database.t -> t

(** Like {!compute}, but memoized per database {!Database.generation}: as
    long as the database has not been mutated, repeated calls (every
    {!Probing.probe}, every retraction wave) return the same structure
    without rescanning the closure. Entries are dropped when the database
    itself is collected. *)
val of_db : Database.t -> t

(** All strict generalizations [e'] with [(e,⊑,e')] in the closure. *)
val generalizations : t -> Entity.t -> Entity.t list

(** All strict specializations [e'] with [(e',⊑,e)] in the closure. *)
val specializations : t -> Entity.t -> Entity.t list

(** [is_generalization t ~of_:e e'] — strict [(e,⊑,e')], or [e' = Δ]. *)
val is_generalization : t -> of_:Entity.t -> Entity.t -> bool

(** Minimal generalizations per §5.1; [Δ] when none exist ([] for [Δ]
    itself). *)
val minimal_generalizations : t -> Entity.t -> Entity.t list

(** Dual: minimal specializations; [∇] when none exist ([] for [∇]). *)
val minimal_specializations : t -> Entity.t -> Entity.t list

(** Entities known to the hierarchy (participating in some strict [⊑]). *)
val entities : t -> Entity.t list

(** Longest chain length from [e] up to [Δ] (for experiment B4). *)
val height : t -> Entity.t -> int
