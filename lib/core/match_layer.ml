type opts = { virtual_math : bool; virtual_hierarchy : bool; composition : bool }

let eval_opts = { virtual_math = true; virtual_hierarchy = true; composition = true }
let nav_opts = { virtual_math = false; virtual_hierarchy = false; composition = true }
let plain_opts = { virtual_math = false; virtual_hierarchy = false; composition = false }

let domain db () = Database.active_domain db

(* The oracle owns a ground triple when it can decide it; stored facts in
   that region are suppressed to avoid double emission and to keep the
   §3.6 semantics ("never actually stored") authoritative. *)
let oracle_owns opts symtab (fact : Fact.t) =
  let relevant =
    if Entity.is_comparator fact.r then opts.virtual_math
    else if fact.r = Entity.gen then opts.virtual_hierarchy
    else false
  in
  relevant && Virtual_facts.decides symtab fact.s fact.r fact.t

(* Δ/∇ extremity semantics over the virtual hierarchy (§2.3 + §3.1): every
   fact generalizes its relationship and target to Δ (gen-rel/gen-target
   with the virtual (e,⊑,Δ)) and specializes its source to ∇ (gen-source
   with the virtual (∇,⊑,e)). A bound Δ in relationship or target position,
   or ∇ in source position, therefore acts as a wildcard whose matches are
   re-labelled with the extreme. Δ in source position and ∇ elsewhere match
   nothing — exactly why §5.2's (Δ, LOVES, x) fails. *)
let extremity_rewrite (pat : Store.pattern) =
  let rewrap = ref None in
  let s =
    match pat.s with
    | Some s when s = Entity.bottom ->
        rewrap := Some ();
        None
    | other -> other
  in
  let r =
    match pat.r with
    | Some r when r = Entity.top ->
        rewrap := Some ();
        None
    | other -> other
  in
  let t =
    match pat.t with
    | Some t when t = Entity.top ->
        rewrap := Some ();
        None
    | other -> other
  in
  if !rewrap = None then None
  else
    let relabel (fact : Fact.t) =
      Fact.make
        (if pat.s = Some Entity.bottom then Entity.bottom else fact.s)
        (if pat.r = Some Entity.top then Entity.top else fact.r)
        (if pat.t = Some Entity.top then Entity.top else fact.t)
    in
    Some ({ Store.s; r; t }, relabel)

let rec enumerate ?(opts = eval_opts) db (pat : Store.pattern) emit =
  (* Hierarchy patterns (r = ⊑) belong to the oracle and are never
     rewritten; for other relationships the extremes relabel {e real}
     facts only — counting the trivially-true reflexive ⊑ among "related
     in any way" would make every Δ-template succeed and defeat the §5.2
     misspelling diagnosis. *)
  let rewritable = pat.r <> Some Entity.gen in
  match (if opts.virtual_hierarchy && rewritable then extremity_rewrite pat else None) with
  | Some (rewritten, relabel) ->
      let seen = Fact.Tbl.create 16 in
      enumerate ~opts:{ opts with virtual_hierarchy = false } db rewritten (fun fact ->
          let fact = relabel fact in
          if not (Fact.Tbl.mem seen fact) then begin
            Fact.Tbl.add seen fact ();
            emit fact
          end)
  | None ->
  let symtab = Database.symtab db in
  Database.closure_match db pat (fun fact ->
      if not (oracle_owns opts symtab fact) then emit fact);
  let wants_virtual =
    match pat.r with
    | Some r when Entity.is_comparator r -> opts.virtual_math
    | Some r when r = Entity.gen -> opts.virtual_hierarchy
    | Some _ -> false
    | None -> opts.virtual_hierarchy
  in
  if wants_virtual then Virtual_facts.candidates symtab ~domain:(domain db) pat emit;
  if opts.composition then Composition.candidates db pat emit

(* --- generation-keyed answer cache ---------------------------------- *)

(* Navigation renders the same star-template neighborhoods over and over,
   and composition enumeration makes each of those probes expensive.
   Complete pattern answers are cached keyed by (database uid, opts,
   pattern) and stamped with the database generation: every mutation that
   can change an answer bumps the generation, so stale entries simply
   miss and are overwritten. The cache is per-domain (DLS) — parallel
   probing hits it without locking, at the cost of one warm-up per
   domain — and bounded: FIFO eviction at [cache_capacity] entries, and
   answers longer than [max_cached_rows] are never stored. Partial
   enumerations (an [exists] probe aborting at the first match) never
   reach the store step, so only complete answers are ever replayed. *)

module Key = struct
  type t = { uid : int; opts_bits : int; s : int; r : int; t : int }

  let equal (a : t) (b : t) =
    a.uid = b.uid && a.opts_bits = b.opts_bits && a.s = b.s && a.r = b.r
    && a.t = b.t

  let hash (k : t) = Hashtbl.hash k
end

module Key_tbl = Hashtbl.Make (Key)

let cache_capacity = 512
let max_cached_rows = 4096

(* Hit/miss/eviction counts are kept {e per database} (the cache itself
   is keyed by database uid, so process-global counters would blend
   unrelated databases into one meaningless ratio). The counters live in
   the metrics registry, labeled by uid; a process-wide table maps uid to
   its handles, and each domain memoizes the handles it has used so the
   hot path never takes the table lock. *)
module Metrics = Lsdb_obs.Metrics

type db_counters = {
  c_hits : Lsdb_obs.Metrics.counter;
  c_misses : Lsdb_obs.Metrics.counter;
  c_evictions : Lsdb_obs.Metrics.counter;
}

let counters_lock = Mutex.create ()
let counters_tbl : (int, db_counters) Hashtbl.t = Hashtbl.create 16

let global_counters uid =
  Mutex.lock counters_lock;
  let handles =
    match Hashtbl.find_opt counters_tbl uid with
    | Some handles -> handles
    | None ->
        let labels = [ ("db", string_of_int uid) ] in
        let handles =
          {
            c_hits =
              Metrics.counter ~help:"Answer-cache hits per database" ~labels
                "lsdb_match_cache_hits_total";
            c_misses =
              Metrics.counter ~help:"Answer-cache misses per database" ~labels
                "lsdb_match_cache_misses_total";
            c_evictions =
              Metrics.counter ~help:"Answer-cache evictions per database"
                ~labels "lsdb_match_cache_evictions_total";
          }
        in
        Hashtbl.add counters_tbl uid handles;
        handles
  in
  Mutex.unlock counters_lock;
  handles

type cache = {
  entries : (int * Fact.t list) Key_tbl.t;  (* generation, answer rows *)
  order : Key.t Queue.t;  (* insertion order, for FIFO eviction *)
  counters : (int, db_counters) Hashtbl.t;  (* uid ↦ handles, domain-local memo *)
}

let cache_dls =
  Domain.DLS.new_key (fun () ->
      {
        entries = Key_tbl.create 64;
        order = Queue.create ();
        counters = Hashtbl.create 4;
      })

let counters_for cache uid =
  match Hashtbl.find_opt cache.counters uid with
  | Some handles -> handles
  | None ->
      let handles = global_counters uid in
      Hashtbl.add cache.counters uid handles;
      handles

type cache_stats = { hits : int; misses : int; evictions : int; size : int }

let domain_cache_size ?uid cache =
  match uid with
  | None -> Key_tbl.length cache.entries
  | Some uid ->
      Key_tbl.fold
        (fun (k : Key.t) _ n -> if k.uid = uid then n + 1 else n)
        cache.entries 0

let cache_stats_for db =
  let uid = Database.uid db in
  let handles = global_counters uid in
  {
    hits = Metrics.counter_value handles.c_hits;
    misses = Metrics.counter_value handles.c_misses;
    evictions = Metrics.counter_value handles.c_evictions;
    size = domain_cache_size ~uid (Domain.DLS.get cache_dls);
  }

let key_of db opts (pat : Store.pattern) =
  let enc = function Some e -> e | None -> min_int in
  let bit b n = if b then n else 0 in
  {
    Key.uid = Database.uid db;
    opts_bits =
      bit opts.virtual_math 1
      lor bit opts.virtual_hierarchy 2
      lor bit opts.composition 4;
    s = enc pat.s;
    r = enc pat.r;
    t = enc pat.t;
  }

let cache_store cache key generation rows =
  if not (Key_tbl.mem cache.entries key) then begin
    Queue.push key cache.order;
    if Queue.length cache.order > cache_capacity then begin
      let (evicted : Key.t) = Queue.pop cache.order in
      Key_tbl.remove cache.entries evicted;
      (* Attribute the eviction to the database that owned the evicted
         entry, not the one doing the inserting. *)
      Metrics.incr (counters_for cache evicted.uid).c_evictions
    end
  end;
  Key_tbl.replace cache.entries key (generation, rows)

let candidates ?(opts = eval_opts) db pat emit =
  let cache = Domain.DLS.get cache_dls in
  let key = key_of db opts pat in
  let counters = counters_for cache key.uid in
  let generation = Database.generation db in
  match Key_tbl.find_opt cache.entries key with
  | Some (stamp, rows) when stamp = generation ->
      Metrics.incr counters.c_hits;
      List.iter emit rows
  | _ ->
      Metrics.incr counters.c_misses;
      let rows = ref [] in
      let n = ref 0 in
      enumerate ~opts db pat (fun fact ->
          incr n;
          if !n <= max_cached_rows then rows := fact :: !rows;
          emit fact);
      (* An enumeration over a tripped governor's partial closure
         completes without an exception but may be incomplete: never
         cache it. (Belt and braces — [Database.set_governor] also bumps
         the generation when it discards partial state.) *)
      if !n <= max_cached_rows && Database.governor_tripped db = None then
        cache_store cache key generation (List.rev !rows)

let match_list ?opts db pat =
  let acc = ref [] in
  candidates ?opts db pat (fun fact -> acc := fact :: !acc);
  !acc

let count ?opts db pat =
  let n = ref 0 in
  candidates ?opts db pat (fun _ -> incr n);
  !n

exception Found

let exists ?opts db pat =
  try
    candidates ?opts db pat (fun _ -> raise Found);
    false
  with Found -> true

let holds ?(opts = eval_opts) db (fact : Fact.t) =
  let symtab = Database.symtab db in
  match Virtual_facts.holds symtab fact.s fact.r fact.t with
  | Some answer
    when (Entity.is_comparator fact.r && opts.virtual_math)
         || (fact.r = Entity.gen && opts.virtual_hierarchy) ->
      answer
  | _ ->
      Database.closure_mem db fact
      || exists ~opts db (Store.pattern ~s:fact.s ~r:fact.r ~t:fact.t ())
