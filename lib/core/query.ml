type t =
  | Atom of Template.t
  | And of t * t
  | Or of t * t
  | Exists of string * t
  | Forall of string * t

let atom tpl = Atom tpl

let conj = function
  | [] -> invalid_arg "Query.conj: empty conjunction"
  | first :: rest -> List.fold_left (fun acc q -> And (acc, q)) first rest

let disj = function
  | [] -> invalid_arg "Query.disj: empty disjunction"
  | first :: rest -> List.fold_left (fun acc q -> Or (acc, q)) first rest

let rec equal a b =
  match (a, b) with
  | Atom x, Atom y -> Template.equal x y
  | And (a1, a2), And (b1, b2) | Or (a1, a2), Or (b1, b2) -> equal a1 b1 && equal a2 b2
  | Exists (v, x), Exists (w, y) | Forall (v, x), Forall (w, y) ->
      String.equal v w && equal x y
  | (Atom _ | And _ | Or _ | Exists _ | Forall _), _ -> false

let rec compare a b =
  let tag = function
    | Atom _ -> 0
    | And _ -> 1
    | Or _ -> 2
    | Exists _ -> 3
    | Forall _ -> 4
  in
  match (a, b) with
  | Atom x, Atom y -> Template.compare x y
  | And (a1, a2), And (b1, b2) | Or (a1, a2), Or (b1, b2) ->
      let c = compare a1 b1 in
      if c <> 0 then c else compare a2 b2
  | Exists (v, x), Exists (w, y) | Forall (v, x), Forall (w, y) ->
      let c = String.compare v w in
      if c <> 0 then c else compare x y
  | _ -> Int.compare (tag a) (tag b)

let free_vars q =
  let seen = Hashtbl.create 8 in
  let out = ref [] in
  let rec go bound = function
    | Atom tpl ->
        List.iter
          (fun v ->
            if (not (List.mem v bound)) && not (Hashtbl.mem seen v) then begin
              Hashtbl.add seen v ();
              out := v :: !out
            end)
          (Template.vars tpl)
    | And (a, b) | Or (a, b) ->
        go bound a;
        go bound b
    | Exists (v, body) | Forall (v, body) -> go (v :: bound) body
  in
  go [] q;
  List.rev !out

let is_proposition q = free_vars q = []

let atoms q =
  let out = ref [] in
  let rec go = function
    | Atom tpl -> out := tpl :: !out
    | And (a, b) | Or (a, b) ->
        go a;
        go b
    | Exists (_, body) | Forall (_, body) -> go body
  in
  go q;
  List.rev !out

let rec map_atoms f = function
  | Atom tpl -> Atom (f tpl)
  | And (a, b) -> And (map_atoms f a, map_atoms f b)
  | Or (a, b) -> Or (map_atoms f a, map_atoms f b)
  | Exists (v, body) -> Exists (v, map_atoms f body)
  | Forall (v, body) -> Forall (v, map_atoms f body)

let replace_atom q ~index ~by =
  let counter = ref (-1) in
  let rec go = function
    | Atom tpl ->
        incr counter;
        if !counter = index then match by with Some tpl' -> Some (Atom tpl') | None -> None
        else Some (Atom tpl)
    | And (a, b) -> (
        match (go a, go b) with
        | Some a', Some b' -> Some (And (a', b'))
        | Some a', None -> Some a'
        | None, Some b' -> Some b'
        | None, None -> None)
    | Or (a, b) -> (
        match (go a, go b) with
        | Some a', Some b' -> Some (Or (a', b'))
        | Some a', None -> Some a'
        | None, Some b' -> Some b'
        | None, None -> None)
    | Exists (v, body) -> (
        match go body with Some body' -> Some (Exists (v, body')) | None -> None)
    | Forall (v, body) -> (
        match go body with Some body' -> Some (Forall (v, body')) | None -> None)
  in
  let result = go q in
  if !counter < index then
    invalid_arg (Printf.sprintf "Query.replace_atom: no atom at index %d" index);
  result

let constants q =
  List.concat
    (List.mapi
       (fun i tpl -> List.map (fun (pos, e) -> (i, pos, e)) (Template.constants tpl))
       (atoms q))

let unmatched_entities db q =
  let symtab = Database.symtab db in
  let seen = Hashtbl.create 8 in
  List.filter_map
    (fun (_, _, e) ->
      if
        Entity.is_special e || Symtab.is_numeric symtab e
        || Database.entity_in_closure db e
        || Hashtbl.mem seen e
      then None
      else begin
        Hashtbl.add seen e ();
        Some e
      end)
    (constants q)

let rec pp symtab ppf = function
  | Atom tpl -> Template.pp symtab ppf tpl
  | And (a, b) -> Format.fprintf ppf "%a ∧ %a" (pp_inner symtab) a (pp_inner symtab) b
  | Or (a, b) -> Format.fprintf ppf "%a ∨ %a" (pp_inner symtab) a (pp_inner symtab) b
  | Exists (v, body) -> Format.fprintf ppf "∃%s . %a" v (pp_inner symtab) body
  | Forall (v, body) -> Format.fprintf ppf "∀%s . %a" v (pp_inner symtab) body

and pp_inner symtab ppf q =
  match q with
  | Atom _ -> pp symtab ppf q
  | And _ | Or _ | Exists _ | Forall _ -> Format.fprintf ppf "(%a)" (pp symtab) q

let to_string symtab q = Format.asprintf "%a" (pp symtab) q
