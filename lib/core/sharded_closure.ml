module D = Lsdb_datalog

type t = {
  store : Store.t;
  stage : D.Sharded.t;  (* stratum 1 (inversion), overlays over the store *)
  main : D.Sharded.t;  (* main rules, base view = store ∪ stage overlays *)
  uview : D.Engine.view;  (* the full union view (main's) *)
  mutable staged_rules : D.Rule.t list;
  mutable rules : D.Rule.t list;
  mutable actives : (int, unit) Hashtbl.t option;
      (* entities of overlay (derived) facts only; the store's refcount
         table answers for the base tier *)
  (* Same amortized derivation-order record as the single-heap
     implementation: segments, newest first, filtered against the
     provenance tables on read, compacted when stale entries dominate. *)
  mutable derived_segments : D.Triple.t list list;
  mutable derived_listed : int;
}

exception Diverged = D.Engine.Diverged

let base_of_store store : D.Sharded.base =
  {
    b_iter =
      (fun ~s ~r ~tgt f -> Store.match_pattern store { Store.s; r; t = tgt } f);
    b_mem = (fun fact -> Store.mem store fact);
    b_count = (fun ~s ~r ~tgt -> Store.count_fast store { Store.s; r; t = tgt });
    b_cardinal = (fun () -> Store.cardinal store);
  }

(* The main stratum's base tier is everything the stage stratum can see:
   store plus stage overlays. Stage consequences are thereby base facts
   to the main rules — no copy, no provenance mirroring. *)
let base_of_stage stage : D.Sharded.base =
  let v = D.Sharded.view stage in
  {
    b_iter = v.v_iter;
    b_mem = v.v_mem;
    b_count = v.v_count;
    b_cardinal = (fun () -> D.Sharded.cardinal stage);
  }

let has_prov t fact =
  D.Sharded.is_derived t.main fact || D.Sharded.is_derived t.stage fact

let compute ?(max_facts = 2_000_000) ?pool ?gov ?(staged_rules = []) ~rules
    ~shards store =
  let plan = D.Shard.plan shards in
  let tripped () =
    match gov with
    | Some g -> Lsdb_exec.Governor.tripped g <> None
    | None -> false
  in
  let stage = D.Sharded.create ~max_facts ~plan (base_of_store store) in
  let stage_derived =
    match staged_rules with
    | [] -> []
    | _ -> D.Sharded.closure ?pool ?gov staged_rules stage (Store.to_seq store)
  in
  let main = D.Sharded.create ~max_facts ~plan (base_of_stage stage) in
  let main_derived =
    (* A budget that tripped inside the stage stratum: adopt the stage as
       the partial result (the main overlays just stay empty — everything
       remains visible through the union view), exactly as the
       single-heap path adopts its stage index. *)
    if tripped () then []
    else
      D.Sharded.closure ?pool ?gov rules main
        (Seq.append (Store.to_seq store) (List.to_seq stage_derived))
  in
  let derived = stage_derived @ main_derived in
  {
    store;
    stage;
    main;
    uview = D.Sharded.view main;
    staged_rules;
    rules;
    actives = None;
    derived_segments = [ derived ];
    derived_listed = List.length derived;
  }

let push_derived t added =
  let derived = List.filter (has_prov t) added in
  if derived <> [] then begin
    t.derived_segments <- derived :: t.derived_segments;
    t.derived_listed <- t.derived_listed + List.length derived
  end

let derived_live t =
  D.Sharded.derived_count t.stage + D.Sharded.derived_count t.main

let refilter_derived t =
  t.derived_segments <-
    List.filter_map
      (fun seg ->
        match List.filter (has_prov t) seg with
        | [] -> None
        | seg -> Some seg)
      t.derived_segments;
  t.derived_listed <-
    List.fold_left (fun n seg -> n + List.length seg) 0 t.derived_segments

let compact_derived t =
  if t.derived_listed > (2 * derived_live t) + 1024 then refilter_derived t

let extend ?pool ?gov t facts =
  let stage_added = D.Sharded.extend ?pool ?gov t.staged_rules t.stage facts in
  (* Facts the main stratum had derived and the stage now derives change
     owner (main overlay → stage overlay): [Sharded.extend] demotes them
     from main below. They are already listed in an older segment, whose
     entry stays live through the stage's provenance — pushing them again
     would list them twice. *)
  let moved = D.Triple.Tbl.create 16 in
  List.iter
    (fun f ->
      if D.Sharded.is_derived t.main f then D.Triple.Tbl.replace moved f ())
    stage_added;
  let main_added =
    D.Sharded.extend ?pool ?gov t.rules t.main (facts @ stage_added)
  in
  push_derived t
    (List.filter
       (fun f -> not (D.Triple.Tbl.mem moved f))
       (stage_added @ main_added));
  compact_derived t;
  t.actives <- None;
  t

(* Stage-first delete/rederive, as in the single-heap path: facts the
   stage stratum loses for good become the deletions of the main
   stratum. The reconcile dance the copying implementation needs
   (re-adding stage survivors the main retraction dropped) cannot arise
   here — the main stratum reads stage facts through its base view and
   can never remove them. *)
let retract ?pool ?gov t facts =
  let sret = D.Sharded.retract ?pool ?gov t.staged_rules t.stage facts in
  let _mret : D.Sharded.retraction =
    D.Sharded.retract ?pool ?gov t.rules t.main sret.removed
  in
  t.actives <- None;
  compact_derived t;
  (* Retracted base facts that survived rederivation are derived now and
     were never in the derivation-order record while base. *)
  let promoted = List.filter (has_prov t) facts in
  if promoted <> [] then begin
    t.derived_segments <- promoted :: t.derived_segments;
    t.derived_listed <- t.derived_listed + List.length promoted
  end;
  t

let support_size t =
  D.Sharded.support_size t.stage + D.Sharded.support_size t.main

let set_rules t ~staged_rules ~rules =
  t.staged_rules <- staged_rules;
  t.rules <- rules

let closed_under t rules = D.Sharded.closed_under rules t.main
let mem t fact = t.uview.v_mem fact
let cardinal t = D.Sharded.cardinal t.main

(* Read from the store, not a shadow counter: an [extend] handed a
   duplicate or a [retract] handed a non-member would drift a counter
   adjusted by [List.length facts]. [Store.cardinal] is O(1). *)
let base_cardinal t = Store.cardinal t.store

let derived t =
  List.concat_map (List.filter (has_prov t)) (List.rev t.derived_segments)

let derived_count t = derived_live t
let is_derived t fact = has_prov t fact

let provenance t fact =
  match D.Sharded.provenance t.main fact with
  | Some { D.Engine.rule; premises } -> Some (rule, premises)
  | None -> (
      match D.Sharded.provenance t.stage fact with
      | Some { D.Engine.rule; premises } -> Some (rule, premises)
      | None -> None)

let rounds t = D.Sharded.rounds t.stage + D.Sharded.rounds t.main

let rule_counts t =
  let counts = Hashtbl.create 16 in
  let tally _ ({ rule; _ } : D.Engine.provenance) =
    Hashtbl.replace counts rule
      (1 + Option.value ~default:0 (Hashtbl.find_opt counts rule))
  in
  D.Sharded.iter_provenance tally t.stage;
  D.Sharded.iter_provenance tally t.main;
  Hashtbl.fold (fun rule n acc -> (rule, n) :: acc) counts []
  |> List.sort (fun (_, a) (_, b) -> Int.compare b a)

let iter f t =
  Store.iter f t.store;
  D.Sharded.iter_overlays f t.stage;
  D.Sharded.iter_overlays f t.main

let to_seq t =
  Seq.append (Store.to_seq t.store)
    (Seq.append
       (D.Sharded.overlays_to_seq t.stage)
       (D.Sharded.overlays_to_seq t.main))

let match_pattern t (pat : Store.pattern) f =
  t.uview.v_iter ~s:pat.s ~r:pat.r ~tgt:pat.t f

let match_list t pat =
  let acc = ref [] in
  match_pattern t pat (fun fact -> acc := fact :: !acc);
  !acc

let count_matches t pat =
  let n = ref 0 in
  match_pattern t pat (fun _ -> incr n);
  !n

(* Selectivity probes: exact store bucket sizes plus exact overlay
   posting counts, summed across the shards a pattern can touch — the
   "degree sums aggregated across shards" the bidirectional frontier
   choice runs on. *)
let count_pattern t (pat : Store.pattern) =
  t.uview.v_count ~s:pat.s ~r:pat.r ~tgt:pat.t

let out_degree t e = t.uview.v_count ~s:(Some e) ~r:None ~tgt:None
let in_degree t e = t.uview.v_count ~s:None ~r:None ~tgt:(Some e)

exception Found

let exists_match t pat =
  try
    match_pattern t pat (fun _ -> raise Found);
    false
  with Found -> true

let force_actives t =
  match t.actives with
  | Some table -> table
  | None ->
      let table = Hashtbl.create 256 in
      let add (triple : D.Triple.t) =
        Hashtbl.replace table triple.s ();
        Hashtbl.replace table triple.r ();
        Hashtbl.replace table triple.t ()
      in
      D.Sharded.iter_overlays add t.stage;
      D.Sharded.iter_overlays add t.main;
      t.actives <- Some table;
      table

let prepare_readers t = ignore (force_actives t)

let entity_active t e =
  Store.entity_active t.store e || Hashtbl.mem (force_actives t) e

let active_entities t =
  let overlay = force_actives t in
  Seq.append
    (Store.active_entities t.store)
    (Seq.filter
       (fun e -> not (Store.entity_active t.store e))
       (Hashtbl.to_seq_keys overlay))

let shards t = Store.shards t.store

let overlay_cardinals t =
  let stage = D.Sharded.overlay_cardinals t.stage in
  let main = D.Sharded.overlay_cardinals t.main in
  Array.init (Array.length stage) (fun i -> stage.(i) + main.(i))

let exchanged t = D.Sharded.exchanged t.stage + D.Sharded.exchanged t.main

let tier_stats t =
  D.Index.sum_stats (D.Sharded.tier_stats t.stage) (D.Sharded.tier_stats t.main)

let reshard_hint t =
  match D.Sharded.reshard_hint t.main with
  | Some h -> Some h
  | None -> D.Sharded.reshard_hint t.stage
