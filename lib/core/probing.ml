module Pool = Lsdb_exec.Pool

type success = {
  query : Query.t;
  steps : Retraction.step list;
  answer : Eval.answer;
}

type outcome =
  | Answered of Eval.answer
  | Retracted of {
      wave : int;
      successes : success list;
      attempted : int;
      critical : bool;
    }
  | Exhausted of {
      waves : int;
      attempted : int;
      unknown_entities : Entity.t list;
    }

type pending = { query : Query.t; steps_rev : Retraction.step list }

let probe ?policy ?(max_waves = 8) ?(max_wave_width = 512) ?opts ?pool db q =
  let pool = match pool with Some _ as p -> p | None -> Database.pool db in
  let parallel =
    match pool with Some p when Pool.size p > 1 -> Some p | _ -> None
  in
  (* Wave evaluation is read-only, so one candidate query per pool lane is
     safe once the closure and its lazy caches are forced up front. Results
     are merged in candidate order, so the outcome is identical to the
     sequential partition. *)
  if parallel <> None then Database.prepare_readers db;
  let evaluate_wave candidates =
    let classify { query; steps_rev } =
      let answer = Eval.eval ?opts db query in
      if answer.rows <> [] then
        Either.Left { query; steps = List.rev steps_rev; answer }
      else Either.Right { query; steps_rev }
    in
    match parallel with
    | Some p when List.compare_length_with candidates 1 > 0 ->
        List.partition_map Fun.id (Pool.map p classify candidates)
    | _ -> List.partition_map classify candidates
  in
  let answer = Eval.eval ?opts db q in
  if answer.rows <> [] then Answered answer
  else begin
    let broadness = Broadness.of_db db in
    let seen = Hashtbl.create 64 in
    Hashtbl.add seen q ();
    let total_attempted = ref 0 in
    let rec wave n frontier =
      if n > max_waves || frontier = [] then
        Exhausted
          {
            waves = n - 1;
            attempted = !total_attempted;
            unknown_entities = Query.unmatched_entities db q;
          }
      else begin
        (* Expand every failed query of the previous wave by one minimal
           broadening step, deduplicating across the whole search. *)
        let next = ref [] in
        let count = ref 0 in
        List.iter
          (fun { query; steps_rev } ->
            if !count < max_wave_width then
              List.iter
                (fun ({ Retraction.query = broader_query; step } : Retraction.broader) ->
                  if !count < max_wave_width && not (Hashtbl.mem seen broader_query)
                  then begin
                    Hashtbl.add seen broader_query ();
                    incr count;
                    next := { query = broader_query; steps_rev = step :: steps_rev } :: !next
                  end)
                (Retraction.retraction_set ?policy db broadness query))
          frontier;
        let candidates = List.rev !next in
        let attempted = List.length candidates in
        total_attempted := !total_attempted + attempted;
        let successes, failures = evaluate_wave candidates in
        if successes <> [] then
          Retracted
            {
              wave = n;
              successes;
              attempted;
              critical = List.length successes = attempted;
            }
        else wave (n + 1) failures
      end
    in
    wave 1 [ { query = q; steps_rev = [] } ]
  end

let render_menu db q outcome =
  let symtab = Database.symtab db in
  let buf = Buffer.create 256 in
  let add line =
    Buffer.add_string buf line;
    Buffer.add_char buf '\n'
  in
  add (Printf.sprintf "Query: %s" (Query.to_string symtab q));
  (match outcome with
  | Answered answer ->
      add (Printf.sprintf "Succeeded with %d answer(s)." (List.length answer.rows))
  | Retracted { wave; successes; critical; _ } ->
      add "Query failed. Retrying...";
      if wave > 1 then add (Printf.sprintf "(successes appear at retraction wave %d)" wave);
      List.iteri
        (fun i success ->
          let descr =
            String.concat ", " (List.map (Retraction.describe db) success.steps)
          in
          add
            (Printf.sprintf "%d. Success with %s (%d answer(s))" (i + 1) descr
               (List.length success.answer.rows)))
        successes;
      add "You may select.";
      if critical then
        add "(critical failure: every minimally broader query succeeds)"
  | Exhausted { unknown_entities = []; waves; attempted } ->
      add
        (Printf.sprintf
           "Query failed; no broader query succeeded (%d waves, %d queries attempted)."
           waves attempted)
  | Exhausted { unknown_entities; _ } ->
      add
        (Printf.sprintf "Query failed: no such database entities: %s."
           (String.concat ", " (List.map (Database.entity_name db) unknown_entities)));
      List.iter
        (fun unknown ->
          match Search.suggestions db (Database.entity_name db unknown) with
          | [] -> ()
          | candidates ->
              add
                (Printf.sprintf "Did you mean %s?"
                   (String.concat ", "
                      (List.map (Database.entity_name db) candidates))))
        unknown_entities);
  Buffer.contents buf
