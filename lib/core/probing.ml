module Pool = Lsdb_exec.Pool
module Metrics = Lsdb_obs.Metrics
module Trace = Lsdb_obs.Trace

type success = {
  query : Query.t;
  steps : Retraction.step list;
  answer : Eval.answer;
}

type outcome =
  | Answered of Eval.answer
  | Retracted of {
      wave : int;
      successes : success list;
      attempted : int;
      critical : bool;
    }
  | Exhausted of {
      waves : int;
      attempted : int;
      unknown_entities : Entity.t list;
    }

type pending = { query : Query.t; steps_rev : Retraction.step list }

(* Observability handles, registered once at module initialization. *)
let m_probes =
  Metrics.counter ~help:"Probe invocations" "lsdb_probing_probes_total"

let m_waves =
  Metrics.counter ~help:"Retraction waves evaluated" "lsdb_probing_waves_total"

let m_attempted =
  Metrics.counter ~help:"Broadened queries attempted across waves"
    "lsdb_probing_broadenings_attempted_total"

let m_succeeded =
  Metrics.counter ~help:"Broadened queries that produced answers"
    "lsdb_probing_broadenings_succeeded_total"

let outcome_counter outcome =
  Metrics.counter ~help:"Probe outcomes by kind"
    ~labels:[ ("outcome", outcome) ]
    "lsdb_probing_outcomes_total"

let m_answered = outcome_counter "answered"
let m_retracted = outcome_counter "retracted"
let m_exhausted = outcome_counter "exhausted"

let m_probe_seconds =
  Metrics.histogram ~help:"Wall-clock seconds per probe"
    "lsdb_probing_probe_seconds"

let m_wave_seconds =
  Metrics.histogram ~help:"Wall-clock seconds per retraction wave"
    "lsdb_probing_wave_seconds"

let probe ?policy ?(max_waves = 8) ?(max_wave_width = 512) ?opts ?pool db q =
  Metrics.incr m_probes;
  Trace.span "probe" @@ fun () ->
  Metrics.time m_probe_seconds @@ fun () ->
  let gov = Database.governor db in
  let pool = match pool with Some _ as p -> p | None -> Database.pool db in
  let parallel =
    (* Demand mode evaluates sequentially: the demand engine grows its
       cones in place, so wave candidates are not read-only probes there.
       Answers are unaffected — only wave wall-clock changes. *)
    match pool with
    | Some p when Pool.size p > 1 && Database.closure_mode db = Database.Eager ->
        Some p
    | _ -> None
  in
  (* Wave evaluation is read-only, so one candidate query per pool lane is
     safe once the closure and its lazy caches are forced up front. Results
     are merged in candidate order, so the outcome is identical to the
     sequential partition. *)
  if parallel <> None then Database.prepare_readers db;
  let evaluate_wave candidates =
    let classify { query; steps_rev } =
      let answer = Eval.eval ?opts db query in
      if answer.rows <> [] then
        Either.Left { query; steps = List.rev steps_rev; answer }
      else Either.Right { query; steps_rev }
    in
    match parallel with
    | Some p when List.compare_length_with candidates 1 > 0 ->
        List.partition_map Fun.id (Pool.map p classify candidates)
    | _ -> List.partition_map classify candidates
  in
  let answer = Eval.eval ?opts db q in
  if answer.rows <> [] then begin
    Metrics.incr m_answered;
    Answered answer
  end
  else begin
    let broadness = Broadness.of_db db in
    let seen = Hashtbl.create 64 in
    Hashtbl.add seen q ();
    let total_attempted = ref 0 in
    let current_wave = ref 0 in
    let rec wave n frontier =
      if n > max_waves || frontier = [] then begin
        Metrics.incr m_exhausted;
        Exhausted
          {
            waves = n - 1;
            attempted = !total_attempted;
            unknown_entities = Query.unmatched_entities db q;
          }
      end
      else begin
        current_wave := n;
        Lsdb_exec.Governor.count_wave gov;
        Metrics.incr m_waves;
        (* The wave's own work (broadening + evaluation) runs inside the
           span; the recursion happens outside it, so each wave's span
           and histogram sample covers exactly one wave. *)
        let step =
          Trace.span "probe.wave" ~meta:[ ("wave", string_of_int n) ]
          @@ fun () ->
          Metrics.time m_wave_seconds @@ fun () ->
          (* Expand every failed query of the previous wave by one minimal
             broadening step, deduplicating across the whole search. *)
          let next = ref [] in
          let count = ref 0 in
          List.iter
            (fun { query; steps_rev } ->
              if !count < max_wave_width then
                List.iter
                  (fun ({ Retraction.query = broader_query; step } : Retraction.broader) ->
                    if !count < max_wave_width && not (Hashtbl.mem seen broader_query)
                    then begin
                      Hashtbl.add seen broader_query ();
                      incr count;
                      next := { query = broader_query; steps_rev = step :: steps_rev } :: !next
                    end)
                  (Retraction.retraction_set ?policy db broadness query))
            frontier;
          let candidates = List.rev !next in
          let attempted = List.length candidates in
          total_attempted := !total_attempted + attempted;
          Metrics.add m_attempted attempted;
          Trace.annotate "width" (string_of_int attempted);
          let successes, failures = evaluate_wave candidates in
          Metrics.add m_succeeded (List.length successes);
          Trace.annotate "succeeded" (string_of_int (List.length successes));
          if successes <> [] then begin
            Metrics.incr m_retracted;
            Either.Left
              (Retracted
                 {
                   wave = n;
                   successes;
                   attempted;
                   critical = List.length successes = attempted;
                 })
          end
          else Either.Right failures
        in
        match step with
        | Either.Left outcome -> outcome
        | Either.Right failures -> wave (n + 1) failures
      end
    in
    (* A governor trip mid-search surfaces as exhaustion at the wave
       reached: each wave already evaluated returned sound (possibly
       partial) answers, and none succeeded or we would have returned.
       [unknown_entities] is left empty — computing it evaluates against
       the closure and would immediately re-trip. *)
    try wave 1 [ { query = q; steps_rev = [] } ]
    with Lsdb_exec.Governor.Trip _ ->
      Metrics.incr m_exhausted;
      Exhausted
        {
          waves = max 0 (!current_wave - 1);
          attempted = !total_attempted;
          unknown_entities = [];
        }
  end

let render_menu db q outcome =
  let symtab = Database.symtab db in
  let buf = Buffer.create 256 in
  let add line =
    Buffer.add_string buf line;
    Buffer.add_char buf '\n'
  in
  add (Printf.sprintf "Query: %s" (Query.to_string symtab q));
  (match outcome with
  | Answered answer ->
      add (Printf.sprintf "Succeeded with %d answer(s)." (List.length answer.rows))
  | Retracted { wave; successes; critical; _ } ->
      add "Query failed. Retrying...";
      if wave > 1 then add (Printf.sprintf "(successes appear at retraction wave %d)" wave);
      List.iteri
        (fun i success ->
          let descr =
            String.concat ", " (List.map (Retraction.describe db) success.steps)
          in
          add
            (Printf.sprintf "%d. Success with %s (%d answer(s))" (i + 1) descr
               (List.length success.answer.rows)))
        successes;
      add "You may select.";
      if critical then
        add "(critical failure: every minimally broader query succeeds)"
  | Exhausted { unknown_entities = []; waves; attempted } ->
      add
        (Printf.sprintf
           "Query failed; no broader query succeeded (%d waves, %d queries attempted)."
           waves attempted)
  | Exhausted { unknown_entities; _ } ->
      add
        (Printf.sprintf "Query failed: no such database entities: %s."
           (String.concat ", " (List.map (Database.entity_name db) unknown_entities)));
      List.iter
        (fun unknown ->
          match Search.suggestions db (Database.entity_name db unknown) with
          | [] -> ()
          | candidates ->
              add
                (Printf.sprintf "Did you mean %s?"
                   (String.concat ", "
                      (List.map (Database.entity_name db) candidates))))
        unknown_entities);
  Buffer.contents buf
