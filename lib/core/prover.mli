(** Goal-directed inference: prove a single fact (or enumerate matches of
    a single template) by backward chaining through the enabled rules,
    without materializing the closure.

    The paper leaves "performance" open (§6.2); the two classical
    strategies are bottom-up materialization ({!Closure}, amortized over
    many queries) and top-down proving (cheap for cold point queries over
    big heaps). The prover runs iterated tabled resolution: each pass
    expands goals depth-first with cycles cut at in-progress goals, and
    passes repeat until no goal's answer table grows — the least fixpoint
    over the generated subgoal patterns, i.e. a magic-sets-style
    relevance restriction of the closure. It is {e sound} w.r.t. the
    closure semantics and complete for derivations whose subgoal chains
    fit in [max_depth] (default 32; recursion safety, not a practical
    limit for the §3 rules). Inversion is applied to stored facts only,
    mirroring the closure's stratification. Experiment B11 measures the
    crossover against materialization. *)

exception Gave_up of int
(** Raised when a proof attempt exceeds [max_expansions] goal expansions
    — the honest signal that top-down proving is losing to the subgoal
    fan-out (on hub-heavy heaps, where a class like EMPLOYEE touches
    most facts, materialization wins; experiment B11 quantifies this). *)

(** [prove db fact] — is [fact] in the inference closure of the stored
    facts? (Virtual facts are consulted; composition is not — use
    {!Match_layer} for composed relationships.) *)
val prove : ?max_depth:int -> ?max_expansions:int -> Database.t -> Fact.t -> bool

(** [solve db tpl] — all ground instances of a template derivable by
    backward chaining, as bindings of the template's variables. *)
val solve :
  ?max_depth:int ->
  ?max_expansions:int ->
  Database.t ->
  Template.t ->
  (string * Entity.t) list list

(** [prove_counted] additionally returns the number of goal expansions
    performed {e by this call} (for benchmarks). [max_expansions]
    defaults to 200_000.

    Goal tables persist across calls, per database and per domain, keyed
    by {!Database.generation} — the same generation source as the
    match-layer answer cache and the demand-mode cone memos, so a rule
    toggle or fact mutation invalidates all of them together. A repeat
    proof over an unchanged heap therefore reports [0] expansions. *)
val prove_counted :
  ?max_depth:int -> ?max_expansions:int -> Database.t -> Fact.t -> bool * int
