(** The closure of the fact heap under the database's rules (§2.6): base
    facts plus everything derivable, with per-fact provenance.

    Mathematical facts (§3.6), hierarchy extremes and reflexive [⊑] are
    *not* in the closure — they are virtual and answered by
    {!Virtual_facts}; composition facts (§3.7) are enumerated lazily by
    {!Composition}. The {!Match} layer fuses all three views. *)

type t

exception Diverged of int
(** The rule set generated more than [max_facts] facts. *)

(** [compute ?max_facts ?staged_rules ~rules store] runs the semi-naive
    engine over the current contents of [store]. [rules] must already be
    compiled against the owning database's relationship classification.

    [staged_rules] run first, to their own fixpoint over the base facts
    only; the main [rules] then close over base ∪ staged consequences.
    This stratification exists for inversion (§3.4): the paper's facts
    read "every instance of the source relates to {e some} instance of
    the target" (§3.2's footnote), and inverting a fact whose endpoint
    was already generalized would silently turn that ∃ into a ∀ — an
    unsoundness in the rules as printed that only shows up when they are
    actually executed (see DESIGN.md).

    [shards] picks the implementation: [1] is the classic single-heap
    path (each stratum copies its input into a private index); [> 1]
    dispatches to {!Sharded_closure}, which evaluates {e through} the
    store with hash-partitioned derived overlays and never copies the
    base facts. Defaults to the store's own shard count
    ({!Store.shards}), so a sharded heap automatically gets the sharded
    closure. Content is identical either way; enumeration order is not
    (compare canonically sorted). *)
val compute :
  ?max_facts:int ->
  ?pool:Lsdb_exec.Pool.t ->
  ?gov:Lsdb_exec.Governor.t ->
  ?staged_rules:Lsdb_datalog.Rule.t list ->
  ?shards:int ->
  rules:Lsdb_datalog.Rule.t list ->
  Store.t ->
  t

(** [extend ?max_facts closure facts] incrementally maintains the closure
    under insertion of base [facts]: the semi-naive fixpoint continues
    from the new triples (through the same strata as [compute]), reusing
    everything already derived. The closure is updated in place and also
    returned. A fact asserted as base that the closure had previously
    derived is demoted to base (its recorded derivation is dropped), so
    that derived-ness always matches a from-scratch recompute.

    With [?pool] (here and in {!compute}/{!retract}), each semi-naive
    round is sharded across the pool's domains; results are
    byte-identical to the sequential path for any pool size.

    With [?gov] (here and in {!compute}/{!retract}), the engine
    checkpoints the governor; on a trip the closure holds a consistent
    subset of the true fixpoint and must not be reused as if complete
    (see {!Lsdb_datalog.Engine}). *)
val extend :
  ?max_facts:int ->
  ?pool:Lsdb_exec.Pool.t ->
  ?gov:Lsdb_exec.Governor.t ->
  t ->
  Fact.t list ->
  t

(** [retract ?max_facts closure facts] incrementally maintains the
    closure under deletion of base [facts], via delete/rederive
    ({!Lsdb_datalog.Engine.retract}) run per stratum: the stage stratum
    is retracted first and the facts it loses become the deletions of the
    main stratum. The resulting fact set (and which facts count as
    derived) is identical to a from-scratch {!compute} over the surviving
    store; a retracted base fact that is still derivable stays in the
    closure, as a derived fact. *)
val retract :
  ?max_facts:int ->
  ?pool:Lsdb_exec.Pool.t ->
  ?gov:Lsdb_exec.Governor.t ->
  t ->
  Fact.t list ->
  t

(** Total number of edges in the strata's support indexes (premise ↦
    dependents); [0] until the first retraction forces them. *)
val support_size : t -> int

(** [set_rules t ~staged_rules ~rules] swaps the compiled rule set used
    by future {!extend}/{!retract} calls. Only sound when the caller has
    established that the closure's current content is what [compute]
    under the new rule set would produce — e.g. a disabled rule with no
    recorded derivations ({!rule_counts}), or an enabled rule the closure
    is already {!closed_under}. *)
val set_rules :
  t -> staged_rules:Lsdb_datalog.Rule.t list -> rules:Lsdb_datalog.Rule.t list -> unit

(** [closed_under t rules] — does one application round of [rules] over
    the closure produce nothing new? *)
val closed_under : t -> Lsdb_datalog.Rule.t list -> bool

val mem : t -> Fact.t -> bool
val cardinal : t -> int

(** Number of base (stored) facts at computation time. *)
val base_cardinal : t -> int

(** Derived (non-base) facts in derivation order. *)
val derived : t -> Fact.t list

val derived_count : t -> int
val is_derived : t -> Fact.t -> bool

(** One recorded derivation for a derived fact: rule name and premises. *)
val provenance : t -> Fact.t -> (string * Fact.t list) option

(** Semi-naive rounds needed to reach the fixpoint. *)
val rounds : t -> int

(** Derivations per rule, sorted descending — where the closure's volume
    comes from (used by the B1 report and for tuning rule sets). *)
val rule_counts : t -> (string * int) list

val iter : (Fact.t -> unit) -> t -> unit
val to_seq : t -> Fact.t Seq.t

(** Indexed pattern matching over the whole closure. *)
val match_pattern : t -> Store.pattern -> (Fact.t -> unit) -> unit

val match_list : t -> Store.pattern -> Fact.t list
val count_matches : t -> Store.pattern -> int

(** [count_pattern t pat] — the number of closure facts matching [pat],
    in O(1) (see {!Lsdb_datalog.Index.count}; exact on the single heap,
    exact store buckets plus exact overlay postings when sharded).
    [count_matches] walks the candidates instead; this is the cheap
    probe for join ordering and frontier selection. *)
val count_pattern : t -> Store.pattern -> int

(** Exact O(1) out-degree / in-degree of an entity in the closure. *)
val out_degree : t -> Entity.t -> int

val in_degree : t -> Entity.t -> int
val exists_match : t -> Store.pattern -> bool

(** Entities appearing in some closure fact. *)
val active_entities : t -> Entity.t Seq.t

(** [entity_active t e] — does [e] appear in some closure fact? (Backed
    by the same lazily built table as {!active_entities}.) *)
val entity_active : t -> Entity.t -> bool

(** Force the lazily built caches ({!active_entities}' table) so that the
    closure can afterwards be read concurrently from several domains
    without racing a cache fill. Must be called from a single domain,
    before the fan-out, with no interleaved mutation. *)
val prepare_readers : t -> unit

(** {1 Shard introspection (B20, shell [.stats])} *)

(** Shard count of the live implementation ([1] = single-heap path). *)
val shards : t -> int

(** Live derived facts per shard (a single-element array on the
    single-heap path) — the balance behind the imbalance gauge. *)
val overlay_cardinals : t -> int array

(** Cross-shard deltas routed at round barriers over this closure's
    lifetime; [0] on the single-heap path. *)
val exchanged : t -> int

(** Frozen/delta posting-tier sizes of the closure's indexes (the one
    full index on the single-heap path; all overlays of both strata when
    sharded). *)
val tier_stats : t -> Lsdb_datalog.Index.tier_stats

(** Reshard suggestion [(shard, permille, streak)] when the sharded
    imbalance gauge has pinned over threshold for several consecutive
    fixpoints; [None] on the single-heap path or while balanced. *)
val reshard_hint : t -> (int * int * int) option

(** [intersect t h1 h2 emit] — gallop-intersect two posting paths of the
    single-heap closure index, calling [emit] once per entity filling
    both hinges' free position. [false] when this closure is sharded
    (no single packed index to intersect — the caller falls back to a
    hash semi-join over [match_pattern]). *)
val intersect :
  t ->
  Lsdb_datalog.Index.hinge ->
  Lsdb_datalog.Index.hinge ->
  (Entity.t -> unit) ->
  bool
