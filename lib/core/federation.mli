(** Unified access to multiple databases (§1): "unified access to multiple
    databases is much simpler with databases whose architecture does not
    emphasize structure".

    A federation merges member heaps into one database by name — no schema
    integration step exists because there are no schemas. Synonym bridge
    facts ([(A,≈,B)]) reconcile members that name the same real-world
    entity differently; they are ordinary facts inserted into the merged
    view. The federation remembers which member(s) contributed each base
    fact. *)

type t

(** Merge the named members into a fresh database. Member rule sets beyond
    the builtins are carried over (name clashes: last member wins).
    [shards] partitions the merged heap ({!Database.create}). *)
val create : ?shards:int -> (string * Database.t) list -> t

(** Like {!create}, but each member is supplied as a thunk that opens its
    heap, and a thunk that raises degrades to a {e skipped} member instead
    of killing the whole federation: the merge carries on with the members
    that did open, {!members} lists only those, and {!skipped} reports the
    casualties (with the exception text). Each skip bumps the
    [lsdb_federation_skipped_members_total] counter. *)
val create_lenient : ?shards:int -> (string * (unit -> Database.t)) list -> t

(** The merged database (browse and query it like any other). *)
val database : t -> Database.t

val members : t -> string list

(** Members that failed to open under {!create_lenient}, as
    [(name, error)] pairs; [[]] for federations built with {!create}. *)
val skipped : t -> (string * string) list

(** Member names that contributed a base fact ([[]] for facts added
    directly to the merged view, e.g. bridges). *)
val origins : t -> Fact.t -> string list

(** [add_bridge t a b] inserts the synonym fact [(a,≈,b)] into the merged
    view, consolidating two spellings of one real-world entity (§3.3). *)
val add_bridge : t -> string -> string -> unit

(** Facts contributed by at least two different members — the overlap the
    merge discovered. *)
val shared_facts : t -> Fact.t list
