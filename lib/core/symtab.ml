(* The symbol table is read from several domains at once during parallel
   query evaluation, and composition may intern new composed names
   mid-evaluation (Composition.compose_name). Lookups and interning are
   serialized by [lock]; the id->name/numeric arrays are published through
   [Atomic.t] so that readers acquiring the array also see the blitted
   contents after a grow, and [next] is the release point for freshly
   added ids. *)

(* Composed relationship names (Composition's [r1·r2·…·rk]) are
   decomposed on hot match paths; re-splitting the name and re-resolving
   every part under the lock on each call is wasted work, so verdicts are
   memoized per entity. Generation safety: canonical names are immutable,
   so a successful decomposition ([Chain]) and the "no separator"
   verdict ([Atom]) are final; a failure ([Unresolved]) — some part not
   yet interned — can flip once new names arrive, so it carries the
   table's cardinal at computation time and is recomputed only after
   interning has advanced past that stamp. *)
type decomposition = Chain of int list | Atom | Unresolved of int

type t = {
  names : string array Atomic.t;  (* id -> canonical name *)
  numeric : float array Atomic.t;  (* id -> value, nan when not numeric *)
  table : (string, int) Hashtbl.t;  (* guarded by [lock] *)
  next : int Atomic.t;
  lock : Mutex.t;
  decomp : (int, decomposition) Hashtbl.t;  (* guarded by [lock] *)
}

let parse_numeric s =
  let n = String.length s in
  if n = 0 then None
  else
    let start = if s.[0] = '$' then 1 else 0 in
    if start >= n then None
    else
      let buf = Buffer.create n in
      let ok = ref true in
      for i = start to n - 1 do
        match s.[i] with
        | ',' -> ()
        | ('0' .. '9' | '.' | '-' | '+' | 'e' | 'E') as c -> Buffer.add_char buf c
        | _ -> ok := false
      done;
      if not !ok then None else float_of_string_opt (Buffer.contents buf)

(* Callers hold [lock]. *)
let grow t id =
  let names = Atomic.get t.names in
  let cap = Array.length names in
  if id >= cap then begin
    let cap' = max 16 (cap * 2) in
    let names' = Array.make cap' "" in
    Array.blit names 0 names' 0 cap;
    let numeric' = Array.make cap' nan in
    Array.blit (Atomic.get t.numeric) 0 numeric' 0 cap;
    (* Publish fully initialized arrays; readers never see a partial blit. *)
    Atomic.set t.names names';
    Atomic.set t.numeric numeric'
  end

(* Callers hold [lock]. *)
let raw_add t name =
  let id = Atomic.get t.next in
  grow t id;
  (Atomic.get t.names).(id) <- name;
  (Atomic.get t.numeric).(id) <-
    (match parse_numeric name with Some v -> v | None -> nan);
  Hashtbl.replace t.table name id;
  (* The release store making the new id visible to other domains. *)
  Atomic.set t.next (id + 1);
  id

let create () =
  let t =
    {
      names = Atomic.make (Array.make 64 "");
      numeric = Atomic.make (Array.make 64 nan);
      table = Hashtbl.create 64;
      next = Atomic.make 0;
      lock = Mutex.create ();
      decomp = Hashtbl.create 64;
    }
  in
  Array.iteri
    (fun expected (canonical, aliases) ->
      let id = raw_add t canonical in
      assert (id = expected);
      (* Specials are relationship names, never numbers. *)
      (Atomic.get t.numeric).(id) <- nan;
      List.iter (fun a -> Hashtbl.replace t.table a id) aliases)
    Entity.special_names;
  t

let with_lock t f =
  Mutex.lock t.lock;
  match f () with
  | v ->
      Mutex.unlock t.lock;
      v
  | exception e ->
      Mutex.unlock t.lock;
      raise e

let find t name = with_lock t (fun () -> Hashtbl.find_opt t.table name)
let mem t name = with_lock t (fun () -> Hashtbl.mem t.table name)

let intern t name =
  with_lock t (fun () ->
      match Hashtbl.find_opt t.table name with
      | Some id -> id
      | None -> raw_add t name)

let name t id =
  if id < 0 || id >= Atomic.get t.next then
    invalid_arg (Printf.sprintf "Symtab.name: unknown entity id %d" id)
  else (Atomic.get t.names).(id)

let alias t alias_name id =
  with_lock t (fun () ->
      if id < 0 || id >= Atomic.get t.next then
        invalid_arg (Printf.sprintf "Symtab.alias: unknown entity id %d" id);
      match Hashtbl.find_opt t.table alias_name with
      | Some existing when existing <> id ->
          invalid_arg
            (Printf.sprintf "Symtab.alias: %S already names entity %d" alias_name
               existing)
      | Some _ -> ()
      | None -> Hashtbl.add t.table alias_name id)

let cardinal t = Atomic.get t.next

(* Split [name] on every occurrence of the (non-empty) byte string
   [sep]; no separator yields a single part. *)
let split_on_sep ~sep name =
  let ns = String.length sep and n = String.length name in
  let matches_at i =
    i + ns <= n
    &&
    let rec eq j = j = ns || (name.[i + j] = sep.[j] && eq (j + 1)) in
    eq 0
  in
  let parts = ref [] in
  let start = ref 0 in
  let i = ref 0 in
  while !i + ns <= n do
    if matches_at !i then begin
      parts := String.sub name !start (!i - !start) :: !parts;
      start := !i + ns;
      i := !i + ns
    end
    else incr i
  done;
  parts := String.sub name !start (n - !start) :: !parts;
  List.rev !parts

let decompose t ~sep e =
  let entity_name = name t e in
  (* validates [e] *)
  with_lock t (fun () ->
      let compute () =
        match split_on_sep ~sep entity_name with
        | [] | [ _ ] -> Atom
        | parts -> (
            let rec resolve acc = function
              | [] -> Chain (List.rev acc)
              | part :: rest -> (
                  match Hashtbl.find_opt t.table part with
                  | Some id -> resolve (id :: acc) rest
                  | None -> Unresolved (Atomic.get t.next))
            in
            resolve [] parts)
      in
      let verdict =
        match Hashtbl.find_opt t.decomp e with
        | Some (Chain _ | Atom) as cached -> Option.get cached
        | Some (Unresolved stamp) when stamp = Atomic.get t.next ->
            Unresolved stamp
        | Some (Unresolved _) | None ->
            let v = compute () in
            Hashtbl.replace t.decomp e v;
            v
      in
      match verdict with
      | Chain chain -> Some chain
      | Atom | Unresolved _ -> None)

let numeric_value t id =
  let v = (Atomic.get t.numeric).(id) in
  if Float.is_nan v then None else Some v

let is_numeric t id = not (Float.is_nan (Atomic.get t.numeric).(id))

let iter f t =
  for id = 0 to Atomic.get t.next - 1 do
    f id
  done

let iter_user f t =
  for id = Entity.special_count to Atomic.get t.next - 1 do
    f id
  done

let iter_numeric f t =
  let numeric = Atomic.get t.numeric in
  for id = 0 to Atomic.get t.next - 1 do
    if not (Float.is_nan numeric.(id)) then f id
  done
