type conflict = Contradictory of Fact.t | Math

type violation = { fact : Fact.t; conflict : conflict }

let violations db =
  let symtab = Database.symtab db in
  let out = ref [] in
  (* Contradiction pairs: for every (r,⊥,r') in the closure, facts related
     by r and also by r'. ⊥ is symmetric (axiom (⊥,↔,⊥) + inversion), so
     each unordered pair is reported once via an order filter. The
     mode-aware accessors keep this goal-directed under demand: only the
     ⊥ extent, the extents of relationships actually declared
     contradictory, and the candidate clash memberships are derived. *)
  Database.closure_match db (Store.pattern ~r:Entity.contra ()) (fun contra_fact ->
      let r = contra_fact.s and r' = contra_fact.t in
      if r <= r' && not (Entity.equal r Entity.contra) then
        Database.closure_match db (Store.pattern ~r ()) (fun fact ->
            let clash = Fact.make fact.s r' fact.t in
            let clashes =
              Database.closure_mem db clash
              || Virtual_facts.holds symtab fact.s r' fact.t = Some true
            in
            if clashes && not (r = r' && Fact.compare fact clash > 0) then
              out := { fact; conflict = Contradictory clash } :: !out));
  (* Oracle refutations: stored or derived facts the mathematics denies. *)
  (match Database.closure_mode db with
  | Database.Eager ->
      Closure.iter
        (fun fact ->
          match Virtual_facts.holds symtab fact.s fact.r fact.t with
          | Some false -> out := { fact; conflict = Math } :: !out
          | Some true | None -> ())
        (Database.closure db)
  | Database.Demand ->
      (* [Virtual_facts.holds] refutes only comparator relationships (the
         ⊑/Δ/∇ branch answers [Some true] or [None]), so demanding the six
         comparator extents covers every possible Math violation without
         materializing the closure. *)
      List.iter
        (fun cmp ->
          Database.closure_match db (Store.pattern ~r:cmp ()) (fun fact ->
              match Virtual_facts.holds symtab fact.s fact.r fact.t with
              | Some false -> out := { fact; conflict = Math } :: !out
              | Some true | None -> ()))
        [ Entity.lt; Entity.gt; Entity.eq; Entity.neq; Entity.le; Entity.ge ]);
  List.rev !out

let is_valid db = violations db = []

let insert_checked db fact =
  if Database.mem_base db fact then Ok false
  else begin
    ignore (Database.insert db fact);
    match violations db with
    | [] -> Ok true
    | vs ->
        ignore (Database.remove db fact);
        Error vs
  end

let add_rule_checked db rule =
  let shadowed =
    List.find_opt (fun (existing, _) -> Rule.equal_name existing rule) (Database.rules db)
  in
  Database.add_rule db rule;
  match violations db with
  | [] -> Ok ()
  | vs ->
      ignore (Database.remove_rule db rule.Rule.name);
      (match shadowed with
      | Some (old_rule, enabled) ->
          Database.add_rule db old_rule;
          if not enabled then ignore (Database.exclude db old_rule.Rule.name)
      | None -> ());
      Error vs

let describe db violation =
  let symtab = Database.symtab db in
  match violation.conflict with
  | Contradictory clash ->
      Printf.sprintf "%s contradicts %s"
        (Fact.to_string symtab violation.fact)
        (Fact.to_string symtab clash)
  | Math ->
      Printf.sprintf "%s is refuted by the mathematical facts"
        (Fact.to_string symtab violation.fact)
