(** Browsing by navigation (§4.1): iteratively examine the neighborhood of
    an entity, pick an entity there, examine its neighborhood, and so on.

    Navigation is effected through template queries — a restricted form of
    the standard query language — so it can be interleaved with standard
    querying. The [*] symbol stands for independent anonymous variables. *)

(** The neighborhood of an entity: every closure fact it participates in,
    grouped by the entity's position. Relationship groups preserve a
    stable order (membership first, then alphabetical). *)
type neighborhood = {
  entity : Entity.t;
  as_source : (Entity.t * Entity.t list) list;  (** relationship ↦ targets *)
  as_target : (Entity.t * Entity.t list) list;  (** relationship ↦ sources *)
  as_relationship : (Entity.t * Entity.t) list;  (** (source, target) pairs *)
}

(** [derived] (default [true]) controls whether inferred facts appear;
    with [false] the table shows stored facts only — exactly the cells
    the paper's §4.1 figures print. *)
val neighborhood :
  ?opts:Match_layer.opts -> ?derived:bool -> Database.t -> Entity.t -> neighborhood

(** [try_entity db e] — the §6.1 [try] operator: all facts that include
    [e] in any position, i.e. [(e,x,y) ∨ (x,e,y) ∨ (x,y,e)]. *)
val try_entity : ?opts:Match_layer.opts -> Database.t -> Entity.t -> Fact.t list

(** [associations db ~src ~tgt] — the relationships connecting two given
    entities, the template [(SRC, *, TGT)]; with composition enabled this
    includes composed paths, the paper's (LEOPOLD, *, MOZART) example. *)
val associations :
  ?opts:Match_layer.opts -> Database.t -> src:Entity.t -> tgt:Entity.t -> Entity.t list

(** [associations_detailed] is {!associations} plus a truncation flag:
    [true] when composition path enumeration hit its [max_paths] cap, so
    composed associations may be missing (the {!Composition.search}
    [truncated] signal — renderers print a warning). *)
val associations_detailed :
  ?opts:Match_layer.opts ->
  Database.t ->
  src:Entity.t ->
  tgt:Entity.t ->
  Entity.t list * bool

(** [star_template db spec] parses a navigation template of the form
    [(term, term, term)] where each term is an entity name, [*], or
    [?var]; [*] becomes a fresh variable. Unknown entity names intern.

    Fresh variables are drawn from a process-wide atomic counter, so
    templates parsed concurrently from several domains (parallel
    rendering under [--domains N]) never share a variable name. *)
val star_template : Database.t -> string * string * string -> Template.t

(** Render the §4.1 one-entity table for the all-star template of [E]:
    one column per
    relationship, targets listed below, membership classes first. *)
val render_source_table : ?derived:bool -> Database.t -> Entity.t -> string

(** Render the table of associations between two entities, §4.1's last
    example. Appends {!truncation_warning} when path enumeration hit the
    [max_paths] cap. *)
val render_associations : Database.t -> src:Entity.t -> tgt:Entity.t -> string

(** The warning line appended to two-entity renderings whose composition
    path enumeration was cut short by the [max_paths] cap. *)
val truncation_warning : string

(** Render any navigation template's answer the way §4.1 prescribes: one
    free variable → a single column; two free variables → a
    two-dimensional table (first variable's values down the side, their
    partners grouped in the second column); propositions and wider
    templates → a plain grid. *)
val render_template : ?opts:Match_layer.opts -> Database.t -> Template.t -> string

(** {1 Sessions} — the iterative stroll, with history. *)

type session

val start : Database.t -> session
val database : session -> Database.t

(** Visit an entity (pushes onto the history). *)
val visit : session -> Entity.t -> neighborhood

(** Step back; [None] at the start of history. *)
val back : session -> Entity.t option

val current : session -> Entity.t option

(** Visited entities, most recent first. *)
val history : session -> Entity.t list
