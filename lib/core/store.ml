module Pair = struct
  type t = int * int

  let equal (a1, b1) (a2, b2) = a1 = a2 && b1 = b2
  let hash (a, b) = ((a * 0x9e3779b1) lxor (b * 0x85ebca77)) land max_int
end

module Pair_tbl = Hashtbl.Make (Pair)
module Int_tbl = Hashtbl.Make (Int)

type bucket = unit Fact.Tbl.t

type t = {
  all : unit Fact.Tbl.t;
  by_sr : bucket Pair_tbl.t;
  by_st : bucket Pair_tbl.t;
  by_rt : bucket Pair_tbl.t;
  by_s : bucket Int_tbl.t;
  by_r : bucket Int_tbl.t;
  by_t : bucket Int_tbl.t;
  refcount : int Int_tbl.t;  (* entity -> number of occurrences in facts *)
}

type pattern = { s : Entity.t option; r : Entity.t option; t : Entity.t option }

let pattern ?s ?r ?t () = { s; r; t }

let create ?(size_hint = 256) () =
  {
    all = Fact.Tbl.create size_hint;
    by_sr = Pair_tbl.create size_hint;
    by_st = Pair_tbl.create size_hint;
    by_rt = Pair_tbl.create size_hint;
    by_s = Int_tbl.create size_hint;
    by_r = Int_tbl.create size_hint;
    by_t = Int_tbl.create size_hint;
    refcount = Int_tbl.create size_hint;
  }

let bucket_add_pair tbl key fact =
  let bucket =
    match Pair_tbl.find_opt tbl key with
    | Some b -> b
    | None ->
        let b = Fact.Tbl.create 4 in
        Pair_tbl.add tbl key b;
        b
  in
  Fact.Tbl.replace bucket fact ()

let bucket_add_int tbl key fact =
  let bucket =
    match Int_tbl.find_opt tbl key with
    | Some b -> b
    | None ->
        let b = Fact.Tbl.create 4 in
        Int_tbl.add tbl key b;
        b
  in
  Fact.Tbl.replace bucket fact ()

let bucket_remove_pair tbl key fact =
  match Pair_tbl.find_opt tbl key with
  | None -> ()
  | Some b ->
      Fact.Tbl.remove b fact;
      if Fact.Tbl.length b = 0 then Pair_tbl.remove tbl key

let bucket_remove_int tbl key fact =
  match Int_tbl.find_opt tbl key with
  | None -> ()
  | Some b ->
      Fact.Tbl.remove b fact;
      if Fact.Tbl.length b = 0 then Int_tbl.remove tbl key

let ref_incr t e =
  Int_tbl.replace t.refcount e
    (1 + match Int_tbl.find_opt t.refcount e with Some n -> n | None -> 0)

let ref_decr t e =
  match Int_tbl.find_opt t.refcount e with
  | None -> ()
  | Some 1 -> Int_tbl.remove t.refcount e
  | Some n -> Int_tbl.replace t.refcount e (n - 1)

let add t (fact : Fact.t) =
  if Fact.Tbl.mem t.all fact then false
  else begin
    Fact.Tbl.add t.all fact ();
    bucket_add_pair t.by_sr (fact.s, fact.r) fact;
    bucket_add_pair t.by_st (fact.s, fact.t) fact;
    bucket_add_pair t.by_rt (fact.r, fact.t) fact;
    bucket_add_int t.by_s fact.s fact;
    bucket_add_int t.by_r fact.r fact;
    bucket_add_int t.by_t fact.t fact;
    ref_incr t fact.s;
    ref_incr t fact.r;
    ref_incr t fact.t;
    true
  end

let remove t (fact : Fact.t) =
  if not (Fact.Tbl.mem t.all fact) then false
  else begin
    Fact.Tbl.remove t.all fact;
    bucket_remove_pair t.by_sr (fact.s, fact.r) fact;
    bucket_remove_pair t.by_st (fact.s, fact.t) fact;
    bucket_remove_pair t.by_rt (fact.r, fact.t) fact;
    bucket_remove_int t.by_s fact.s fact;
    bucket_remove_int t.by_r fact.r fact;
    bucket_remove_int t.by_t fact.t fact;
    ref_decr t fact.s;
    ref_decr t fact.r;
    ref_decr t fact.t;
    true
  end

let mem t fact = Fact.Tbl.mem t.all fact
let cardinal t = Fact.Tbl.length t.all
let is_empty t = cardinal t = 0

let clear t =
  Fact.Tbl.reset t.all;
  Pair_tbl.reset t.by_sr;
  Pair_tbl.reset t.by_st;
  Pair_tbl.reset t.by_rt;
  Int_tbl.reset t.by_s;
  Int_tbl.reset t.by_r;
  Int_tbl.reset t.by_t;
  Int_tbl.reset t.refcount

let iter f t = Fact.Tbl.iter (fun fact () -> f fact) t.all
let fold f t init = Fact.Tbl.fold (fun fact () acc -> f fact acc) t.all init
let to_seq t = Fact.Tbl.to_seq_keys t.all
let to_list t = List.of_seq (to_seq t)

let iter_bucket f = function
  | None -> ()
  | Some bucket -> Fact.Tbl.iter (fun fact () -> f fact) bucket

let match_pattern t { s; r; t = tgt } f =
  match (s, r, tgt) with
  | Some s, Some r, Some tg ->
      let fact = Fact.make s r tg in
      if mem t fact then f fact
  | Some s, Some r, None -> iter_bucket f (Pair_tbl.find_opt t.by_sr (s, r))
  | Some s, None, Some tg -> iter_bucket f (Pair_tbl.find_opt t.by_st (s, tg))
  | None, Some r, Some tg -> iter_bucket f (Pair_tbl.find_opt t.by_rt (r, tg))
  | Some s, None, None -> iter_bucket f (Int_tbl.find_opt t.by_s s)
  | None, Some r, None -> iter_bucket f (Int_tbl.find_opt t.by_r r)
  | None, None, Some tg -> iter_bucket f (Int_tbl.find_opt t.by_t tg)
  | None, None, None -> iter f t

let match_list t pat =
  let acc = ref [] in
  match_pattern t pat (fun fact -> acc := fact :: !acc);
  !acc

let count_matches t pat =
  let n = ref 0 in
  match_pattern t pat (fun _ -> incr n);
  !n

exception Found

let exists_match t pat =
  try
    match_pattern t pat (fun _ -> raise Found);
    false
  with Found -> true

let matches_pattern { s; r; t = tgt } (fact : Fact.t) =
  (match s with Some s -> s = fact.s | None -> true)
  && (match r with Some r -> r = fact.r | None -> true)
  && match tgt with Some tg -> tg = fact.t | None -> true

let match_scan t pat f = iter (fun fact -> if matches_pattern pat fact then f fact) t

let active_entities t = Int_tbl.to_seq_keys t.refcount
let entity_active t e = Int_tbl.mem t.refcount e

let copy t =
  let fresh = create ~size_hint:(max 256 (cardinal t)) () in
  iter (fun fact -> ignore (add fresh fact)) t;
  fresh
