module Shard = Lsdb_datalog.Shard

module Pair = struct
  type t = int * int

  let equal (a1, b1) (a2, b2) = a1 = a2 && b1 = b2
  let hash (a, b) = ((a * 0x9e3779b1) lxor (b * 0x85ebca77)) land max_int
end

module Pair_tbl = Hashtbl.Make (Pair)
module Int_tbl = Hashtbl.Make (Int)

type bucket = unit Fact.Tbl.t

(* One shard of the heap: a full set of posting tables over the facts it
   owns. Everything routable by source ([all], [by_sr], [by_st], [by_s])
   is answered from one shard; source-unbound probes fan out across all
   shards in index order. *)
type sub = {
  all : unit Fact.Tbl.t;
  by_sr : bucket Pair_tbl.t;
  by_st : bucket Pair_tbl.t;
  by_rt : bucket Pair_tbl.t;
  by_s : bucket Int_tbl.t;
  by_r : bucket Int_tbl.t;
  by_t : bucket Int_tbl.t;
}

type t = {
  mutable plan : Shard.plan;
  mutable subs : sub array;  (* length = Shard.shards plan *)
  refcount : int Int_tbl.t;  (* entity -> occurrences, across all shards *)
}

type pattern = { s : Entity.t option; r : Entity.t option; t : Entity.t option }

let pattern ?s ?r ?t () = { s; r; t }

let make_sub size_hint =
  {
    all = Fact.Tbl.create size_hint;
    by_sr = Pair_tbl.create size_hint;
    by_st = Pair_tbl.create size_hint;
    by_rt = Pair_tbl.create size_hint;
    by_s = Int_tbl.create size_hint;
    by_r = Int_tbl.create size_hint;
    by_t = Int_tbl.create size_hint;
  }

let create ?(size_hint = 256) ?(shards = 1) () =
  let plan = Shard.plan shards in
  {
    plan;
    subs = Array.init (Shard.shards plan) (fun _ -> make_sub size_hint);
    refcount = Int_tbl.create size_hint;
  }

let shards t = Shard.shards t.plan
let shard_plan t = t.plan
let sub_of t s = t.subs.(Shard.of_entity t.plan s)

let bucket_add_pair tbl key fact =
  let bucket =
    match Pair_tbl.find_opt tbl key with
    | Some b -> b
    | None ->
        let b = Fact.Tbl.create 4 in
        Pair_tbl.add tbl key b;
        b
  in
  Fact.Tbl.replace bucket fact ()

let bucket_add_int tbl key fact =
  let bucket =
    match Int_tbl.find_opt tbl key with
    | Some b -> b
    | None ->
        let b = Fact.Tbl.create 4 in
        Int_tbl.add tbl key b;
        b
  in
  Fact.Tbl.replace bucket fact ()

let bucket_remove_pair tbl key fact =
  match Pair_tbl.find_opt tbl key with
  | None -> ()
  | Some b ->
      Fact.Tbl.remove b fact;
      if Fact.Tbl.length b = 0 then Pair_tbl.remove tbl key

let bucket_remove_int tbl key fact =
  match Int_tbl.find_opt tbl key with
  | None -> ()
  | Some b ->
      Fact.Tbl.remove b fact;
      if Fact.Tbl.length b = 0 then Int_tbl.remove tbl key

let ref_incr t e =
  Int_tbl.replace t.refcount e
    (1 + match Int_tbl.find_opt t.refcount e with Some n -> n | None -> 0)

let ref_decr t e =
  match Int_tbl.find_opt t.refcount e with
  | None -> ()
  | Some 1 -> Int_tbl.remove t.refcount e
  | Some n -> Int_tbl.replace t.refcount e (n - 1)

let add t (fact : Fact.t) =
  let sub = sub_of t fact.s in
  if Fact.Tbl.mem sub.all fact then false
  else begin
    Fact.Tbl.add sub.all fact ();
    bucket_add_pair sub.by_sr (fact.s, fact.r) fact;
    bucket_add_pair sub.by_st (fact.s, fact.t) fact;
    bucket_add_pair sub.by_rt (fact.r, fact.t) fact;
    bucket_add_int sub.by_s fact.s fact;
    bucket_add_int sub.by_r fact.r fact;
    bucket_add_int sub.by_t fact.t fact;
    ref_incr t fact.s;
    ref_incr t fact.r;
    ref_incr t fact.t;
    true
  end

let remove t (fact : Fact.t) =
  let sub = sub_of t fact.s in
  if not (Fact.Tbl.mem sub.all fact) then false
  else begin
    Fact.Tbl.remove sub.all fact;
    bucket_remove_pair sub.by_sr (fact.s, fact.r) fact;
    bucket_remove_pair sub.by_st (fact.s, fact.t) fact;
    bucket_remove_pair sub.by_rt (fact.r, fact.t) fact;
    bucket_remove_int sub.by_s fact.s fact;
    bucket_remove_int sub.by_r fact.r fact;
    bucket_remove_int sub.by_t fact.t fact;
    ref_decr t fact.s;
    ref_decr t fact.r;
    ref_decr t fact.t;
    true
  end

let mem t (fact : Fact.t) = Fact.Tbl.mem (sub_of t fact.s).all fact

let cardinal t =
  Array.fold_left (fun n sub -> n + Fact.Tbl.length sub.all) 0 t.subs

let shard_cardinals t = Array.map (fun sub -> Fact.Tbl.length sub.all) t.subs
let is_empty t = cardinal t = 0

let clear t =
  Array.iter
    (fun sub ->
      Fact.Tbl.reset sub.all;
      Pair_tbl.reset sub.by_sr;
      Pair_tbl.reset sub.by_st;
      Pair_tbl.reset sub.by_rt;
      Int_tbl.reset sub.by_s;
      Int_tbl.reset sub.by_r;
      Int_tbl.reset sub.by_t)
    t.subs;
  Int_tbl.reset t.refcount

let iter f t =
  Array.iter (fun sub -> Fact.Tbl.iter (fun fact () -> f fact) sub.all) t.subs

let fold f t init =
  Array.fold_left
    (fun acc sub -> Fact.Tbl.fold (fun fact () acc -> f fact acc) sub.all acc)
    init t.subs

let to_seq t =
  Seq.concat_map
    (fun sub -> Fact.Tbl.to_seq_keys sub.all)
    (Array.to_seq t.subs)

let to_list t = List.of_seq (to_seq t)

let iter_bucket f = function
  | None -> ()
  | Some bucket -> Fact.Tbl.iter (fun fact () -> f fact) bucket

(* Source-bound patterns touch exactly one shard; the rest fan out. *)
let match_pattern t { s; r; t = tgt } f =
  match (s, r, tgt) with
  | Some s, Some r, Some tg ->
      let fact = Fact.make s r tg in
      if mem t fact then f fact
  | Some s, Some r, None ->
      iter_bucket f (Pair_tbl.find_opt (sub_of t s).by_sr (s, r))
  | Some s, None, Some tg ->
      iter_bucket f (Pair_tbl.find_opt (sub_of t s).by_st (s, tg))
  | None, Some r, Some tg ->
      Array.iter
        (fun sub -> iter_bucket f (Pair_tbl.find_opt sub.by_rt (r, tg)))
        t.subs
  | Some s, None, None -> iter_bucket f (Int_tbl.find_opt (sub_of t s).by_s s)
  | None, Some r, None ->
      Array.iter (fun sub -> iter_bucket f (Int_tbl.find_opt sub.by_r r)) t.subs
  | None, None, Some tg ->
      Array.iter (fun sub -> iter_bucket f (Int_tbl.find_opt sub.by_t tg)) t.subs
  | None, None, None -> iter f t

let match_list t pat =
  let acc = ref [] in
  match_pattern t pat (fun fact -> acc := fact :: !acc);
  !acc

let count_matches t pat =
  let n = ref 0 in
  match_pattern t pat (fun _ -> incr n);
  !n

let bucket_len = function None -> 0 | Some b -> Fact.Tbl.length b

(* Exact O(1) counts from bucket sizes (the heap has no tombstones) —
   the cheap selectivity probe the sharded closure's view exposes for
   join ordering. *)
let count_fast t { s; r; t = tgt } =
  match (s, r, tgt) with
  | Some s, Some r, Some tg -> if mem t (Fact.make s r tg) then 1 else 0
  | Some s, Some r, None -> bucket_len (Pair_tbl.find_opt (sub_of t s).by_sr (s, r))
  | Some s, None, Some tg -> bucket_len (Pair_tbl.find_opt (sub_of t s).by_st (s, tg))
  | None, Some r, Some tg ->
      Array.fold_left
        (fun n sub -> n + bucket_len (Pair_tbl.find_opt sub.by_rt (r, tg)))
        0 t.subs
  | Some s, None, None -> bucket_len (Int_tbl.find_opt (sub_of t s).by_s s)
  | None, Some r, None ->
      Array.fold_left
        (fun n sub -> n + bucket_len (Int_tbl.find_opt sub.by_r r))
        0 t.subs
  | None, None, Some tg ->
      Array.fold_left
        (fun n sub -> n + bucket_len (Int_tbl.find_opt sub.by_t tg))
        0 t.subs
  | None, None, None -> cardinal t

exception Found

let exists_match t pat =
  try
    match_pattern t pat (fun _ -> raise Found);
    false
  with Found -> true

let matches_pattern { s; r; t = tgt } (fact : Fact.t) =
  (match s with Some s -> s = fact.s | None -> true)
  && (match r with Some r -> r = fact.r | None -> true)
  && match tgt with Some tg -> tg = fact.t | None -> true

let match_scan t pat f = iter (fun fact -> if matches_pattern pat fact then f fact) t

let active_entities t = Int_tbl.to_seq_keys t.refcount
let entity_active t e = Int_tbl.mem t.refcount e

(* Re-partition in place: the handle every reader captured stays valid,
   only the internal routing changes. O(heap); callers invalidate any
   structure that depends on iteration order. *)
let reshard t n =
  let plan = Shard.plan n in
  if Shard.shards plan <> Shard.shards t.plan then begin
    let facts = to_list t in
    let size_hint = max 256 (cardinal t / Shard.shards plan) in
    t.plan <- plan;
    t.subs <- Array.init (Shard.shards plan) (fun _ -> make_sub size_hint);
    Int_tbl.reset t.refcount;
    List.iter (fun fact -> ignore (add t fact : bool)) facts
  end

let copy t =
  let fresh = create ~size_hint:(max 256 (cardinal t)) ~shards:(shards t) () in
  iter (fun fact -> ignore (add fresh fact)) t;
  fresh
