(* Top-down proving with tabling-by-iteration: one pass expands goals
   depth-first, cutting cycles at in-progress goals (their current
   answers are used); passes repeat until no table grows, which yields
   the least fixpoint over the generated subgoal patterns — the standard
   magic-sets-style relevance restriction, implemented as iterated SLD.

   Goals are staged like the closure: [`Inversion] goals see stored facts
   plus the inversion rule (recursively staged, so chained inversions
   through ↔ pairs converge); [`Full] goals see stored facts, the
   inversion stratum, and every other enabled rule. *)

type pattern = { ps : Entity.t option; pr : Entity.t option; pt : Entity.t option }

type stage = Inversion | Full

let pattern_key stage { ps; pr; pt } =
  let v = function Some e -> e | None -> -1 in
  ((stage = Full), v ps, v pr, v pt)

type key = bool * int * int * int

type goal_state = {
  mutable answers : Fact.Set.t;
  mutable in_progress : bool;
  mutable valid : bool;  (* false = needs (re-)expansion *)
  mutable dependents : key list;  (* goals that consumed our answers *)
}

type state = {
  db : Database.t;
  table : (key, goal_state) Hashtbl.t;
  mutable worklist : key list;  (* invalidated goals awaiting re-expansion *)
  mutable expansions : int;
  max_depth : int;
  max_expansions : int;
}

exception Gave_up of int

let matches_pattern { ps; pr; pt } (fact : Fact.t) =
  (match ps with Some e -> Entity.equal e fact.s | None -> true)
  && (match pr with Some e -> Entity.equal e fact.r | None -> true)
  && match pt with Some e -> Entity.equal e fact.t | None -> true

(* [expand state depth ?consumer stage pattern] returns the goal's
   current answers, computing them if the goal is new or invalidated.
   [consumer] is the goal that asked; it is registered as a dependent so
   that when this goal's answers later grow, the consumer is re-expanded
   (dependency-driven semi-naive convergence, instead of re-running the
   whole proof tree until quiescence). *)
let rec expand state depth ?consumer stage pattern =
  let key = pattern_key stage pattern in
  let goal =
    match Hashtbl.find_opt state.table key with
    | Some goal -> goal
    | None ->
        let goal =
          { answers = Fact.Set.empty; in_progress = false; valid = false; dependents = [] }
        in
        Hashtbl.add state.table key goal;
        goal
  in
  (match consumer with
  | Some c when not (List.mem c goal.dependents) -> goal.dependents <- c :: goal.dependents
  | _ -> ());
  if goal.in_progress || goal.valid || depth <= 0 then goal.answers
  else begin
    goal.in_progress <- true;
    goal.valid <- true;
    state.expansions <- state.expansions + 1;
    if state.expansions > state.max_expansions then raise (Gave_up state.expansions);
    let add fact =
      if matches_pattern pattern fact && not (Fact.Set.mem fact goal.answers) then begin
        goal.answers <- Fact.Set.add fact goal.answers;
        (* New answers stale every consumer. *)
        List.iter
          (fun dep_key ->
            match Hashtbl.find_opt state.table dep_key with
            | Some dep when dep.valid && not dep.in_progress ->
                dep.valid <- false;
                state.worklist <- dep_key :: state.worklist
            | Some dep -> dep.valid <- false
            | None -> ())
          goal.dependents
      end
    in
    (* Stored facts feed both stages. *)
    Store.match_pattern (Database.store state.db)
      (Store.pattern ?s:pattern.ps ?r:pattern.pr ?t:pattern.pt ())
      add;
    let rules = Database.enabled_rules state.db in
    let key_as_consumer = key in
    (match stage with
    | Inversion ->
        List.iter
          (fun (rule : Rule.t) ->
            if String.equal rule.name "inversion" then
              List.iter
                (fun head ->
                  chain state depth ~consumer:key_as_consumer Inversion pattern rule head add)
                rule.heads)
          rules
    | Full ->
        (* The whole inversion stratum for this pattern. *)
        Fact.Set.iter add
          (expand state (depth - 1) ~consumer:key_as_consumer Inversion pattern);
        List.iter
          (fun (rule : Rule.t) ->
            if not (String.equal rule.name "inversion") then
              List.iter
                (fun head ->
                  chain state depth ~consumer:key_as_consumer Full pattern rule head add)
                rule.heads)
          rules);
    goal.in_progress <- false;
    (* If a dependency (possibly this very goal, through a cycle) grew
       while we were expanding, we were invalidated without being queued
       (in-progress goals are skipped); queue the re-expansion now. *)
    if not goal.valid then state.worklist <- key :: state.worklist;
    goal.answers
  end

(* Unify the goal pattern with a rule head, then solve the body atoms
   left to right under the accumulated bindings; subgoals stay in the
   caller's stage. *)
and chain state depth ~consumer stage pattern (rule : Rule.t) (head : Template.t) add =
  let env : (string, Entity.t) Hashtbl.t = Hashtbl.create 8 in
  let unify_term term bound =
    match (term, bound) with
    | _, None -> true (* goal position free: no constraint *)
    | Template.Ent e, Some want -> Entity.equal e want
    | Template.Var v, Some want -> (
        match Hashtbl.find_opt env v with
        | Some existing -> Entity.equal existing want
        | None ->
            Hashtbl.replace env v want;
            true)
  in
  if
    unify_term head.Template.src pattern.ps
    && unify_term head.Template.rel pattern.pr
    && unify_term head.Template.tgt pattern.pt
  then begin
    let relclass = Database.relclass state.db in
    let guards_ok () =
      List.for_all
        (fun guard ->
          match guard with
          | Rule.Individual v -> (
              match Hashtbl.find_opt env v with
              | Some e -> Relclass.is_individual relclass e
              | None -> true)
          | Rule.Class v -> (
              match Hashtbl.find_opt env v with
              | Some e -> Relclass.is_class relclass e
              | None -> true)
          | Rule.Distinct (a, b) -> (
              match (Hashtbl.find_opt env a, Hashtbl.find_opt env b) with
              | Some x, Some y -> not (Entity.equal x y)
              | _ -> true))
        rule.guards
    in
    let term_value = function
      | Template.Ent e -> Some e
      | Template.Var v -> Hashtbl.find_opt env v
    in
    let bind_fact (tpl : Template.t) (fact : Fact.t) =
      let bind term value newly =
        match term with
        | Template.Ent e -> if Entity.equal e value then Some newly else None
        | Template.Var v -> (
            match Hashtbl.find_opt env v with
            | Some existing -> if Entity.equal existing value then Some newly else None
            | None ->
                Hashtbl.replace env v value;
                Some (v :: newly))
      in
      match bind tpl.Template.src fact.s [] with
      | None -> None
      | Some newly -> (
          match bind tpl.Template.rel fact.r newly with
          | None ->
              List.iter (Hashtbl.remove env) newly;
              None
          | Some newly -> (
              match bind tpl.Template.tgt fact.t newly with
              | None ->
                  List.iter (Hashtbl.remove env) newly;
                  None
              | Some newly -> Some newly))
    in
    (* Greedy body ordering: solve the most-bound atom next, preferring
       a bound source (entity-rooted subgoals stay local; a subgoal like
       (?, EARNS, COMPENSATION) would enumerate the world). *)
    let score (atom : Template.t) =
      let free = ref 0 in
      let bound term = match term_value term with Some _ -> true | None -> incr free; false in
      let src_bound = bound atom.Template.src in
      ignore (bound atom.Template.rel);
      ignore (bound atom.Template.tgt);
      (!free, if src_bound then 0 else 1)
    in
    let rec body pending =
      match pending with
      | [] ->
          if guards_ok () then
            let instantiate (tpl : Template.t) =
              match
                ( term_value tpl.Template.src,
                  term_value tpl.Template.rel,
                  term_value tpl.Template.tgt )
              with
              | Some s, Some r, Some t -> Some (Fact.make s r t)
              | _ -> None
            in
            Option.iter add (instantiate head)
      | _ ->
          if guards_ok () then begin
            let atom =
              List.fold_left
                (fun best candidate ->
                  if score candidate < score best then candidate else best)
                (List.hd pending) (List.tl pending)
            in
            let rest = List.filter (fun a -> a != atom) pending in
            let sub =
              {
                ps = term_value atom.Template.src;
                pr = term_value atom.Template.rel;
                pt = term_value atom.Template.tgt;
              }
            in
            let answers = expand state (depth - 1) ~consumer stage sub in
            Fact.Set.iter
              (fun fact ->
                match bind_fact atom fact with
                | Some newly ->
                    body rest;
                    List.iter (Hashtbl.remove env) newly
                | None -> ())
              answers
          end
    in
    body rule.body
  end

(* Cross-call tabling: the goal table is kept per database (and per
   domain — no locking) and keyed by {!Database.generation}, the same
   generation source the match-layer answer cache and the demand-mode
   cone memos use. One rule toggle or fact mutation bumps the generation
   and invalidates all of them consistently; a repeat query over an
   unchanged heap replays tabled answers with zero new expansions (the
   counter [prove_counted] reports — pinned by a regression test). *)
type memo_entry = { gen : int; state : state }

let memo_dls : (int, memo_entry) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 4)

let state_for ~max_depth ~max_expansions db =
  let memo = Domain.DLS.get memo_dls in
  let uid = Database.uid db in
  let gen = Database.generation db in
  match Hashtbl.find_opt memo uid with
  | Some { gen = g; state }
    when g = gen
         && state.max_depth = max_depth
         && state.max_expansions = max_expansions
         && state.db == db ->
      (* Fresh budget per run; the tabled answers persist. *)
      state.expansions <- 0;
      state
  | _ ->
      let state =
        {
          db;
          table = Hashtbl.create 64;
          worklist = [];
          expansions = 0;
          max_depth;
          max_expansions;
        }
      in
      Hashtbl.replace memo uid { gen; state };
      state

let run ?(max_depth = 32) ?(max_expansions = 200_000) db pattern =
  let state = state_for ~max_depth ~max_expansions db in
  ignore (expand state state.max_depth Full pattern);
  (* Dependency-driven convergence: re-expand goals whose dependencies
     grew, until quiescence. Termination: answers grow monotonically
     within a finite Herbrand base. *)
  let rec drain () =
    match state.worklist with
    | [] -> ()
    | key :: rest ->
        state.worklist <- rest;
        (match Hashtbl.find_opt state.table key with
        | Some goal when not goal.valid ->
            let stage, s, r, t = key in
            let unv v = if v < 0 then None else Some v in
            let pattern = { ps = unv s; pr = unv r; pt = unv t } in
            ignore
              (expand state state.max_depth (if stage then Full else Inversion) pattern)
        | _ -> ());
        drain ()
  in
  drain ();
  let root = Hashtbl.find state.table (pattern_key Full pattern) in
  (root.answers, state.expansions)

let prove_counted ?max_depth ?max_expansions db (fact : Fact.t) =
  if Database.mem_base db fact then (true, 0)
  else
    match Virtual_facts.holds (Database.symtab db) fact.s fact.r fact.t with
    | Some answer -> (answer, 0)
    | None ->
        let pattern = { ps = Some fact.s; pr = Some fact.r; pt = Some fact.t } in
        let answers, expansions = run ?max_depth ?max_expansions db pattern in
        (Fact.Set.mem fact answers, expansions)

let prove ?max_depth ?max_expansions db fact =
  fst (prove_counted ?max_depth ?max_expansions db fact)

let solve ?max_depth ?max_expansions db (tpl : Template.t) =
  let term = function Template.Ent e -> Some e | Template.Var _ -> None in
  let pattern =
    { ps = term tpl.Template.src; pr = term tpl.Template.rel; pt = term tpl.Template.tgt }
  in
  let answers, _ = run ?max_depth ?max_expansions db pattern in
  Fact.Set.fold
    (fun fact acc ->
      match Template.matches tpl fact with Some bindings -> bindings :: acc | None -> acc)
    answers []
