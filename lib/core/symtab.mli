(** Per-database symbol table: bidirectional name ↔ entity-id interning.

    A fresh table already contains the {!Entity} specials at their fixed
    ids (canonical names and ASCII aliases both resolve). Numeric entities
    — names that denote numbers, optionally decorated like ["$25000"] or
    ["1,500"] — have their value parsed once at interning time so the
    virtual-fact oracle (§3.6) can compare them without re-parsing.

    The table is domain-safe: lookups and interning are serialized, and
    id → name/value reads may run concurrently with interning (parallel
    query evaluation interns composed relationship names on the fly). *)

type t

val create : unit -> t

(** [intern t name] returns the id for [name], allocating it on first use.
    Aliases of special entities resolve to the special id. *)
val intern : t -> string -> Entity.t

(** [find t name] is the id of [name] if already interned. *)
val find : t -> string -> Entity.t option

val mem : t -> string -> bool

(** Canonical name of an id. Raises [Invalid_argument] on unknown ids. *)
val name : t -> Entity.t -> string

(** [alias t name id] makes [name] an additional spelling of [id]. Raises
    [Invalid_argument] if [name] is already bound to a different id. *)
val alias : t -> string -> Entity.t -> unit

(** Number of distinct ids (specials included). *)
val cardinal : t -> int

(** [decompose t ~sep e] splits [e]'s canonical name on the (non-empty)
    separator [sep] and resolves every part to its id (aliases included);
    [None] when the name contains no separator or some part is not
    interned. Backs {!Composition.decompose}'s [r1·r2·…·rk] chains.

    Verdicts are memoized generation-safely: canonical names are
    immutable, so successes and "no separator" answers are cached
    forever, while failures are stamped with the table's {!cardinal} and
    recomputed only after new names have been interned. The memo is
    keyed by entity alone, so all callers must pass the same [sep]. *)
val decompose : t -> sep:string -> Entity.t -> Entity.t list option

(** Numeric value parsed from the canonical name, if any. *)
val numeric_value : t -> Entity.t -> float option

val is_numeric : t -> Entity.t -> bool

(** All ids in increasing order, specials included. *)
val iter : (Entity.t -> unit) -> t -> unit

(** User (non-special) ids in increasing order. *)
val iter_user : (Entity.t -> unit) -> t -> unit

(** Ids whose names denote numbers. *)
val iter_numeric : (Entity.t -> unit) -> t -> unit

(** Parse a (possibly decorated) numeric literal the way interning does:
    an optional leading ["$"], grouping commas, and a float body. *)
val parse_numeric : string -> float option
