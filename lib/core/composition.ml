module Metrics = Lsdb_obs.Metrics
module Pool = Lsdb_exec.Pool
module Governor = Lsdb_exec.Governor

let separator = "\xc2\xb7" (* "·" *)

let contains_separator name =
  let sep0 = separator.[0] and sep1 = separator.[1] in
  let n = String.length name in
  let rec scan i = i + 1 < n && ((name.[i] = sep0 && name.[i + 1] = sep1) || scan (i + 1)) in
  scan 0

let compose_name symtab rels =
  match rels with
  | [] | [ _ ] -> invalid_arg "Composition.compose_name: need at least two relationships"
  | _ ->
      let name = String.concat separator (List.map (Symtab.name symtab) rels) in
      Symtab.intern symtab name

(* Decomposition verdicts are memoized in the symbol table
   (generation-safely: failures are retried once new names intern). *)
let decompose symtab e = Symtab.decompose symtab ~sep:separator e

let is_composed symtab e = contains_separator (Symtab.name symtab e)

type path = { source : Entity.t; chain : Entity.t list; target : Entity.t }

(* Only ordinary relationships compose: specials (⊑, ∈, comparators, …)
   and already-composed entities are excluded from chains. *)
let composable symtab r = (not (Entity.is_special r)) && not (is_composed symtab r)

exception Enough

(* Per-fact governor ticks batch through a plain local counter, flushed
   every 256 units: two atomic RMWs per enumerated fact cost more than
   the visit itself on hot DFS walks (B19 gates the governed overhead
   under 5%). [flush] must be called inside the same handler that
   catches the per-fact [Trip]s — it can raise one. *)
let ticker gov =
  let pending = ref 0 in
  let bump n =
    pending := !pending + n;
    if !pending >= 256 then begin
      let n = !pending in
      pending := 0;
      Governor.tick gov n
    end
  and flush () =
    if !pending > 0 then begin
      let n = !pending in
      pending := 0;
      Governor.tick gov n
    end
  in
  (bump, flush)

(* The original unidirectional DFS, retained verbatim as the oracle the
   bidirectional search must reproduce byte-for-byte (same paths, same
   order, same truncation point). Also the fallback when the chain bound
   exceeds the distance-bitmask width. *)
let dfs_paths ?(max_paths = 10_000) db ~src ~tgt =
  let limit = Database.limit db in
  if limit < 2 || Entity.equal src tgt then ([], false)
  else begin
    let symtab = Database.symtab db in
    let gov = Database.governor db in
    let bump, flush_ticks = ticker gov in
    let found = ref [] in
    let count = ref 0 in
    let rec dfs node chain_rev depth =
      if depth < limit then
        Database.closure_match db (Store.pattern ~s:node ()) (fun fact ->
            bump 1;
            if composable symtab fact.r then begin
              let chain_rev' = fact.r :: chain_rev in
              if Entity.equal fact.t tgt && depth + 1 >= 2 then begin
                found := { source = src; chain = List.rev chain_rev'; target = tgt } :: !found;
                incr count;
                if !count >= max_paths then raise Enough
              end;
              dfs fact.t chain_rev' (depth + 1)
            end)
    in
    (* A governor trip reads as truncation: the paths found so far are
       each genuine chains, the search just stopped early. *)
    let truncated =
      try
        dfs src [] 0;
        flush_ticks ();
        false
      with Enough | Governor.Trip _ -> true
    in
    (List.rev !found, truncated)
  end

let paths_dfs ?max_paths db ~src ~tgt = fst (dfs_paths ?max_paths db ~src ~tgt)

(* ------------------------------------------------------------------ *)
(* Bidirectional meet-in-the-middle search                            *)
(* ------------------------------------------------------------------ *)

type search = {
  paths : path list;
  truncated : bool;
  meet_nodes : int;
  forward_expansions : int;
  backward_expansions : int;
}

let m_searches =
  Metrics.counter ~help:"Two-endpoint composition path searches"
    "lsdb_composition_searches_total"

let m_truncated =
  Metrics.counter ~help:"Path searches cut short by the max_paths cap"
    "lsdb_composition_truncated_total"

let m_paths_total =
  Metrics.counter ~help:"Composition paths enumerated" "lsdb_composition_paths_total"

let m_meet_nodes =
  Metrics.counter ~help:"Nodes where the forward and backward frontiers met"
    "lsdb_composition_meet_nodes_total"

let m_empty_meets =
  Metrics.counter ~help:"Searches answered empty at the frontier join"
    "lsdb_composition_empty_meets_total"

let expansion_counter direction =
  Metrics.counter ~help:"Frontier expansions by direction"
    ~labels:[ ("direction", direction) ]
    "lsdb_composition_expansions_total"

let m_expand_forward = expansion_counter "forward"
let m_expand_backward = expansion_counter "backward"

(* Per-depth frontier population; the depth label is capped so the metric
   cardinality stays bounded for large limits. *)
let frontier_nodes_counter direction depth =
  Metrics.counter ~help:"Frontier nodes expanded, by direction and depth"
    ~labels:
      [
        ("direction", direction);
        ("depth", (if depth > 8 then "8+" else string_of_int depth));
      ]
    "lsdb_composition_frontier_nodes_total"

(* Buckets are node counts, not seconds: frontier population per expansion. *)
let frontier_size_histogram direction =
  Metrics.histogram ~help:"Frontier size per expansion (nodes)"
    ~labels:[ ("direction", direction) ]
    ~buckets:[| 1.; 4.; 16.; 64.; 256.; 1024.; 4096.; 16384. |]
    "lsdb_composition_frontier_size"

let m_frontier_forward = frontier_size_histogram "forward"
let m_frontier_backward = frontier_size_histogram "backward"

let m_search_seconds =
  Metrics.histogram ~help:"Two-endpoint path search latency"
    "lsdb_composition_search_seconds"

(* Exact distances are kept as bitmasks (bit i ⇔ some path of length
   exactly i), so the bound must fit an int. Beyond it, fall back to the
   oracle — such limits are far past the paper's interactive range. *)
let bitmask_limit = 60

(* Frontier state for one direction: the nodes at exact distance [depth],
   and for every node ever reached, the set of exact distances at which
   it was reached (no visited-pruning: the DFS follows non-simple paths,
   so a node legitimately has several exact distances). *)
type frontier = {
  mutable level : Entity.t list;
  mutable depth : int;
  mutable exhausted : bool;  (* an expansion returned no nodes: masks complete *)
  masks : (Entity.t, int) Hashtbl.t;  (* node ↦ bitmask of exact distances *)
}

let add_distance masks node depth =
  let prev = Option.value ~default:0 (Hashtbl.find_opt masks node) in
  Hashtbl.replace masks node (prev lor (1 lsl depth))

(* Any bit of [m] set within [lo..hi]? ([lo] is clamped at 0.) *)
let has_bits m ~lo ~hi =
  let lo = max lo 0 in
  hi >= lo && m land (((1 lsl (hi - lo + 1)) - 1) lsl lo) <> 0

(* ∃ i ∈ fm, j ∈ bm with 2 ≤ i + j ≤ limit? *)
let masks_compatible ~limit fm bm =
  let rec go j =
    j <= limit
    && ((bm land (1 lsl j) <> 0 && has_bits fm ~lo:(2 - j) ~hi:(limit - j)) || go (j + 1))
  in
  go 0

let neighbors db symtab ~forward node =
  let pat =
    if forward then Store.pattern ~s:node () else Store.pattern ~t:node ()
  in
  let acc = ref [] in
  Database.closure_match db pat (fun fact ->
      if composable symtab fact.r then
        acc := (if forward then fact.t else fact.s) :: !acc);
  List.rev !acc

(* Below this frontier population the domain fan-out costs more than the
   expansion itself. *)
let parallel_threshold = 64

(* One BFS level: the deduplicated successors (forward) or predecessors
   (backward) of [nodes]. Gathering is a read-only fan-out, so it shards
   across the domain pool when the frontier is large enough; per-node
   results come back in input order (Pool.map is deterministic) and the
   sequential dedup keeps first-seen order, so the next level is
   byte-identical at any pool size. *)
let expand_level db symtab ~forward nodes =
  let gather = neighbors db symtab ~forward in
  let per_node =
    match Database.pool db with
    | Some pool
      when List.length nodes >= parallel_threshold
           && Database.closure_mode db = Database.Eager ->
        (* Demand mode stays sequential: goal evaluation mutates the
           demand state, which is single-threaded by design. *)
        Database.prepare_readers db;
        Pool.map pool gather nodes
    | _ -> List.map gather nodes
  in
  let seen = Hashtbl.create 64 in
  let out = ref [] in
  List.iter
    (List.iter (fun v ->
         if not (Hashtbl.mem seen v) then begin
           Hashtbl.add seen v ();
           out := v :: !out
         end))
    per_node;
  List.rev !out

(* O(1) per node: the posting-list length the next expansion would walk. *)
let frontier_cost db ~forward nodes =
  List.fold_left
    (fun acc v ->
      acc
      + (if forward then Database.out_degree_hint db v else Database.in_degree_hint db v))
    0 nodes

let empty_search =
  {
    paths = [];
    truncated = false;
    meet_nodes = 0;
    forward_expansions = 0;
    backward_expansions = 0;
  }

(* The bidirectional two-endpoint search. Three phases:

   1. Grow exact-distance BFS levels from both endpoints — forward over
      by_s postings, backward over by_t postings — always expanding the
      side whose next level is cheaper (O(1) degree sums), until the
      radii cover the chain bound or a side exhausts.
   2. Join: a path of length L ≤ limit exists iff some node carries a
      forward distance i and a backward distance j with 2 ≤ i+j ≤ limit.
      No meet ⇒ answer [] without ever enumerating a chain.
   3. Reconstruct with the original DFS, pruned by the backward masks:
      recurse into a child only if it still has a completion to [tgt]
      within the remaining budget. Pruned subtrees emit nothing, so the
      emission sequence — and hence the max_paths truncation point — is
      byte-identical to the oracle.

   Before phase 3 the backward masks are completed to depth limit-1,
   keeping only nodes with a compatible forward distance; the forward
   masks are complete over the range that pruning consults (depths
   < limit - b whenever the main loop stopped at f + b = limit, and all
   depths when a side exhausted), so no reachable completion is lost. *)
let search ?(max_paths = 10_000) db ~src ~tgt =
  Metrics.incr m_searches;
  let limit = Database.limit db in
  if limit < 2 || Entity.equal src tgt then empty_search
  else if limit > bitmask_limit then begin
    let paths, truncated = dfs_paths ~max_paths db ~src ~tgt in
    if truncated then Metrics.incr m_truncated;
    Metrics.add m_paths_total (List.length paths);
    { empty_search with paths; truncated }
  end
  else
    Lsdb_obs.Trace.span "composition.search" @@ fun () ->
    Metrics.time m_search_seconds @@ fun () ->
    let symtab = Database.symtab db in
    let gov = Database.governor db in
    let fresh node =
      let masks = Hashtbl.create 256 in
      add_distance masks node 0;
      { level = [ node ]; depth = 0; exhausted = false; masks }
    in
    let fwd = fresh src and bwd = fresh tgt in
    let forward_expansions = ref 0 and backward_expansions = ref 0 in
    let expand fr ~forward =
      let n = List.length fr.level in
      Metrics.incr (if forward then m_expand_forward else m_expand_backward);
      Metrics.add
        (frontier_nodes_counter (if forward then "forward" else "backward") fr.depth)
        n;
      Metrics.observe (if forward then m_frontier_forward else m_frontier_backward)
        (float_of_int n);
      incr (if forward then forward_expansions else backward_expansions);
      Governor.tick gov n;
      let next = expand_level db symtab ~forward fr.level in
      fr.depth <- fr.depth + 1;
      match next with
      | [] ->
          fr.exhausted <- true;
          fr.level <- []
      | _ ->
          List.iter (fun v -> add_distance fr.masks v fr.depth) next;
          fr.level <- next
    in
    (* Phase 1: interleaved radius growth, cheaper side first. A governor
       trip abandons the growth: the masks gathered so far still describe
       real paths, so the phases below can only under-report (sound). *)
    (try
       while fwd.depth + bwd.depth < limit && (not fwd.exhausted) && not bwd.exhausted do
         if
           frontier_cost db ~forward:true fwd.level
           <= frontier_cost db ~forward:false bwd.level
         then expand fwd ~forward:true
         else expand bwd ~forward:false
       done
     with Governor.Trip _ ->
       fwd.exhausted <- true;
       bwd.exhausted <- true);
    (* Phase 2: the meet check, iterating the smaller mask table. *)
    let small, big, small_is_fwd =
      if Hashtbl.length fwd.masks <= Hashtbl.length bwd.masks then
        (fwd.masks, bwd.masks, true)
      else (bwd.masks, fwd.masks, false)
    in
    let meet_nodes = ref 0 in
    Hashtbl.iter
      (fun v m1 ->
        match Hashtbl.find_opt big v with
        | None -> ()
        | Some m2 ->
            let fm, bm = if small_is_fwd then (m1, m2) else (m2, m1) in
            if masks_compatible ~limit fm bm then incr meet_nodes)
      small;
    Metrics.add m_meet_nodes !meet_nodes;
    let stats () =
      {
        empty_search with
        truncated = Governor.is_tripped gov;
        meet_nodes = !meet_nodes;
        forward_expansions = !forward_expansions;
        backward_expansions = !backward_expansions;
      }
    in
    if !meet_nodes = 0 then begin
      Metrics.incr m_empty_meets;
      stats ()
    end
    else begin
      (* Complete the backward masks to depth limit-1, pruning nodes with
         no compatible forward distance (the forward masks are complete
         over the consulted range; see the phase comment above). *)
      (try
        while (not bwd.exhausted) && bwd.depth < limit - 1 do
        let depth' = bwd.depth + 1 in
        Metrics.incr m_expand_backward;
        Metrics.add (frontier_nodes_counter "backward" bwd.depth)
          (List.length bwd.level);
        Metrics.observe m_frontier_backward (float_of_int (List.length bwd.level));
        incr backward_expansions;
        let next = expand_level db symtab ~forward:false bwd.level in
        let kept =
          List.filter
            (fun v ->
              match Hashtbl.find_opt fwd.masks v with
              | None -> false
              | Some fm -> has_bits fm ~lo:(2 - depth') ~hi:(limit - depth'))
            next
        in
        bwd.depth <- depth';
        match kept with
        | [] ->
            bwd.exhausted <- true;
            bwd.level <- []
        | _ ->
            List.iter (fun v -> add_distance bwd.masks v depth') kept;
            bwd.level <- kept
        done
       with Governor.Trip _ ->
         bwd.exhausted <- true;
         bwd.level <- []);
      (* Phase 3: target-pruned DFS reconstruction. *)
      let back_masks = bwd.masks in
      let found = ref [] in
      let count = ref 0 in
      let bump, flush_ticks = ticker gov in
      let rec dfs node chain_rev depth =
        if depth < limit then
          Database.closure_match db (Store.pattern ~s:node ()) (fun fact ->
              bump 1;
              if composable symtab fact.r then begin
                let chain_rev' = fact.r :: chain_rev in
                let depth' = depth + 1 in
                if Entity.equal fact.t tgt && depth' >= 2 then begin
                  found :=
                    { source = src; chain = List.rev chain_rev'; target = tgt }
                    :: !found;
                  incr count;
                  if !count >= max_paths then raise Enough
                end;
                if depth' < limit then
                  match Hashtbl.find_opt back_masks fact.t with
                  | Some bm when has_bits bm ~lo:1 ~hi:(limit - depth') ->
                      dfs fact.t chain_rev' depth'
                  | _ -> ()
              end)
      in
      let truncated =
        try
          dfs src [] 0;
          flush_ticks ();
          Governor.is_tripped gov
        with Enough | Governor.Trip _ -> true
      in
      if truncated then Metrics.incr m_truncated;
      let paths = List.rev !found in
      Metrics.add m_paths_total (List.length paths);
      { (stats ()) with paths; truncated }
    end

let paths ?max_paths db ~src ~tgt = (search ?max_paths db ~src ~tgt).paths

let walk db ~chain ~src =
  let step frontier r =
    let next = Hashtbl.create 16 in
    List.iter
      (fun node ->
        Database.closure_match db (Store.pattern ~s:node ~r ()) (fun fact ->
            Hashtbl.replace next fact.t ()))
      frontier;
    Hashtbl.fold (fun e () acc -> e :: acc) next []
  in
  List.fold_left step [ src ] chain

let walk_backward db ~chain ~tgt =
  let step r frontier =
    let prev = Hashtbl.create 16 in
    List.iter
      (fun node ->
        Database.closure_match db (Store.pattern ~r ~t:node ()) (fun fact ->
            Hashtbl.replace prev fact.s ()))
      frontier;
    Hashtbl.fold (fun e () acc -> e :: acc) prev []
  in
  List.fold_right step chain [ tgt ]

let candidates ?max_paths db (pat : Store.pattern) emit =
  let limit = Database.limit db in
  if limit >= 2 then
    let symtab = Database.symtab db in
    match pat.r with
    | None -> (
        match (pat.s, pat.t) with
        | Some src, Some tgt ->
            let result = search ?max_paths db ~src ~tgt in
            List.iter
              (fun path ->
                emit (Fact.make path.source (compose_name symtab path.chain) path.target))
              result.paths
        | _ -> ())
    | Some r -> (
        match decompose symtab r with
        | None -> ()
        | Some chain when List.length chain > limit -> ()
        | Some chain -> (
            match (pat.s, pat.t) with
            | Some src, Some tgt ->
                (* A 2-chain with both endpoints bound is one hinge
                   intersection — does any middle entity link them? —
                   instead of materializing the whole first frontier. *)
                let linked =
                  match chain with
                  | [ r1; r2 ] ->
                      Database.intersect_exists db
                        (Lsdb_datalog.Index.Out { s = src; r = r1 })
                        (Lsdb_datalog.Index.In { r = r2; t = tgt })
                  | _ -> List.exists (Entity.equal tgt) (walk db ~chain ~src)
                in
                if (not (Entity.equal src tgt)) && linked then
                  emit (Fact.make src r tgt)
            | Some src, None ->
                List.iter
                  (fun tgt -> if not (Entity.equal src tgt) then emit (Fact.make src r tgt))
                  (walk db ~chain ~src)
            | None, Some tgt ->
                List.iter
                  (fun src -> if not (Entity.equal src tgt) then emit (Fact.make src r tgt))
                  (walk_backward db ~chain ~tgt)
            | None, None ->
                (* Enumerate from every entity that sources the chain head. *)
                let first = List.hd chain in
                let seen = Hashtbl.create 64 in
                Database.closure_match db (Store.pattern ~r:first ()) (fun fact ->
                    if not (Hashtbl.mem seen fact.s) then begin
                      Hashtbl.add seen fact.s ();
                      List.iter
                        (fun tgt ->
                          if not (Entity.equal fact.s tgt) then emit (Fact.make fact.s r tgt))
                        (walk db ~chain ~src:fact.s)
                    end)))

let count_compositions ?(max_paths = 1_000_000) db =
  let limit = Database.limit db in
  if limit < 2 then 0
  else begin
    let symtab = Database.symtab db in
    let gov = Database.governor db in
    let bump, flush_ticks = ticker gov in
    let seen = Hashtbl.create 1024 in
    let count = ref 0 in
    let rec dfs origin node chain_rev depth =
      if depth < limit then
        Database.closure_match db (Store.pattern ~s:node ()) (fun fact ->
            bump 1;
            if composable symtab fact.r then begin
              let chain_rev' = fact.r :: chain_rev in
              if depth + 1 >= 2 && not (Entity.equal origin fact.t) then begin
                let key = (origin, chain_rev', fact.t) in
                if not (Hashtbl.mem seen key) then begin
                  Hashtbl.add seen key ();
                  incr count;
                  if !count >= max_paths then raise Enough
                end
              end;
              dfs origin fact.t chain_rev' (depth + 1)
            end)
    in
    (try
       Seq.iter
         (fun e -> if not (Entity.is_special e) then dfs e e [] 0)
         (Database.active_domain db);
       flush_ticks ()
     with Enough | Governor.Trip _ -> ());
    !count
  end
