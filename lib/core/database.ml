(* Mutations not yet folded into the cached closure, in arrival order.
   Inserts extend, retracts delete/rederive; both are incremental. *)
type op = Insert of Fact.t | Retract of Fact.t

type t = {
  uid : int;  (* unique per database; hash key for external caches *)
  symtab : Symtab.t;
  store : Store.t;
  relclass : Relclass.t;
  mutable rules : (Rule.t * bool) list;  (* registration order, enabled flag *)
  mutable composition_limit : int;
  max_facts : int;
  mutable closure_cache : Closure.t option;
  mutable pending : op list;  (* reversed: newest first *)
  mutable computations : int;
  mutable extensions : int;
  mutable retractions : int;
  mutable generation : int;  (* bumped whenever facts/rules/classes change *)
  mutable pool : Lsdb_exec.Pool.t option;  (* domains for closure rounds & probing *)
}

exception Diverged of int

let axiom_facts =
  [
    Fact.make Entity.inv Entity.inv Entity.inv;  (* ↔ is its own inverse (§3.4) *)
    Fact.make Entity.contra Entity.inv Entity.contra;  (* ⊥ is its own inverse (§3.5) *)
  ]

let next_uid = Atomic.make 0

let create ?(max_facts = 2_000_000) () =
  let t =
    {
      uid = Atomic.fetch_and_add next_uid 1;
      symtab = Symtab.create ();
      store = Store.create ();
      relclass = Relclass.create ();
      rules = List.map (fun rule -> (rule, true)) Builtin_rules.all;
      composition_limit = 1;
      max_facts;
      closure_cache = None;
      pending = [];
      computations = 0;
      extensions = 0;
      retractions = 0;
      generation = 0;
      pool = None;
    }
  in
  List.iter (fun fact -> ignore (Store.add t.store fact)) axiom_facts;
  t

let symtab t = t.symtab
let store t = t.store
let relclass t = t.relclass

let invalidate t =
  t.closure_cache <- None;
  t.pending <- [];
  t.generation <- t.generation + 1

let uid t = t.uid
let generation t = t.generation
let set_pool t pool = t.pool <- pool
let pool t = t.pool

let entity t name = Symtab.intern t.symtab name
let find_entity t name = Symtab.find t.symtab name
let entity_name t e = Symtab.name t.symtab e
let entity_count t = Symtab.cardinal t.symtab

let is_class_relationship t e = Relclass.is_class t.relclass e

let insert t fact =
  let added = Store.add t.store fact in
  (* Insertions and removals both maintain the cached closure
     incrementally on next access (semi-naive extension, delete/rederive
     retraction); only rule/class changes that provably alter the
     closure's content invalidate it. *)
  if added then begin
    t.generation <- t.generation + 1;
    if t.closure_cache <> None then t.pending <- Insert fact :: t.pending
  end;
  added

let insert_names t s r tgt = insert t (Fact.of_names t.symtab s r tgt)
let insert_all t facts = List.iter (fun fact -> ignore (insert t fact)) facts

let remove t fact =
  let removed = Store.remove t.store fact in
  if removed then begin
    t.generation <- t.generation + 1;
    if t.closure_cache <> None then t.pending <- Retract fact :: t.pending
  end;
  removed

let remove_names t s r tgt =
  match (find_entity t s, find_entity t r, find_entity t tgt) with
  | Some s, Some r, Some tgt -> remove t (Fact.make s r tgt)
  | _ -> false

let mem_base t fact = Store.mem t.store fact
let base_cardinal t = Store.cardinal t.store

let rule_enabled t name =
  List.exists (fun ((rule : Rule.t), enabled) -> enabled && String.equal rule.name name) t.rules

let rules t = t.rules
let enabled_rules t = List.filter_map (fun (rule, enabled) -> if enabled then Some rule else None) t.rules

let set_limit t n =
  if n < 1 then invalid_arg "Database.set_limit: limit must be >= 1";
  if n <> t.composition_limit then begin
    t.composition_limit <- n;
    (* The limit changes query-visible composition results, so external
       generation-keyed caches (broadness, answer cache) must miss. *)
    t.generation <- t.generation + 1
  end

let limit t = t.composition_limit

(* Compile the enabled rules against the current relationship
   classification. Inversion is stratified: it applies to stored facts
   only (see Closure.compute). *)
let compiled_rules t =
  let is_class = Relclass.is_class t.relclass in
  let staged, main =
    List.partition
      (fun (rule : Rule.t) -> String.equal rule.name "inversion")
      (enabled_rules t)
  in
  let compile = List.map (Rule.compile ~is_class) in
  (compile staged, compile main)

(* Fold the pending mutations into the cached closure, batching runs of
   same-kind ops: consecutive inserts become one extension, consecutive
   retracts one delete/rederive pass. Order across kinds is preserved —
   an insert after a retract of the same fact must win, and vice versa. *)
let flush_pending t closure =
  let flush kind batch =
    let facts = List.rev batch in
    match kind with
    | `Insert ->
        t.extensions <- t.extensions + 1;
        ignore (Closure.extend ~max_facts:t.max_facts ?pool:t.pool closure facts)
    | `Retract ->
        t.retractions <- t.retractions + 1;
        ignore (Closure.retract ~max_facts:t.max_facts ?pool:t.pool closure facts)
  in
  let rec go kind batch = function
    | [] -> if batch <> [] then flush kind batch
    | Insert fact :: rest ->
        if kind = `Insert then go `Insert (fact :: batch) rest
        else begin
          if batch <> [] then flush kind batch;
          go `Insert [ fact ] rest
        end
    | Retract fact :: rest ->
        if kind = `Retract then go `Retract (fact :: batch) rest
        else begin
          if batch <> [] then flush kind batch;
          go `Retract [ fact ] rest
        end
  in
  let ops = List.rev t.pending in
  t.pending <- [];
  go `Insert [] ops

let closure t =
  match t.closure_cache with
  | Some closure when t.pending = [] -> closure
  | Some closure ->
      (try flush_pending t closure
       with Closure.Diverged n ->
         (* The cache is part-way through the batch; discard it. *)
         t.closure_cache <- None;
         raise (Diverged n));
      closure
  | None ->
      let staged_rules, rules = compiled_rules t in
      let closure =
        try
          Closure.compute ~max_facts:t.max_facts ?pool:t.pool ~staged_rules ~rules
            t.store
        with Closure.Diverged n -> raise (Diverged n)
      in
      t.closure_cache <- Some closure;
      t.computations <- t.computations + 1;
      closure

(* --- rule and classification changes -------------------------------- *)

(* Rule toggles fall back to a full recompute only when the touched rule
   provably matters to the closure's content; otherwise the cache is kept
   and its compiled rule set swapped for future incremental maintenance.
   Either way the generation is bumped: external caches key query results
   on it, and composition/virtual layers can see the rule list. *)

let drop_cache t =
  t.closure_cache <- None;
  t.pending <- []

(* After disabling/removing the enabled rule [name]: the closure content
   is unchanged iff no fact's recorded derivation uses [name] (each such
   fact is then derivable without it, and recorded derivations are
   well-founded). The flush inside [closure t] runs first, so the check
   covers pending mutations too. *)
let after_rule_disabled t name =
  t.generation <- t.generation + 1;
  match t.closure_cache with
  | None -> ()
  | Some _ -> (
      match (try Some (closure t) with Diverged _ -> None) with
      | Some c when not (List.mem_assoc name (Closure.rule_counts c)) ->
          let staged_rules, rules = compiled_rules t in
          Closure.set_rules c ~staged_rules ~rules
      | _ -> drop_cache t)

(* After enabling [rule]: the closure content is unchanged iff one
   application round of the rule over it yields nothing new. Enabling
   inversion always recomputes — it runs in its own stratum, and a cache
   computed without a stage cannot grow one. *)
let after_rule_enabled t (rule : Rule.t) =
  t.generation <- t.generation + 1;
  match t.closure_cache with
  | None -> ()
  | Some _ ->
      if String.equal rule.name "inversion" then drop_cache t
      else (
        match (try Some (closure t) with Diverged _ -> None) with
        | Some c
          when Closure.closed_under c
                 [ Rule.compile ~is_class:(Relclass.is_class t.relclass) rule ] ->
            let staged_rules, rules = compiled_rules t in
            Closure.set_rules c ~staged_rules ~rules
        | _ -> drop_cache t)

let add_rule t rule =
  let replaced =
    List.exists (fun (existing, _) -> Rule.equal_name existing rule) t.rules
  in
  t.rules <-
    List.filter (fun (existing, _) -> not (Rule.equal_name existing rule)) t.rules
    @ [ (rule, true) ];
  if replaced then invalidate t else after_rule_enabled t rule

let set_enabled t name enabled =
  let found = ref false in
  let toggled = ref None in
  t.rules <-
    List.map
      (fun ((rule : Rule.t), current) ->
        if String.equal rule.name name then begin
          found := true;
          if current <> enabled then toggled := Some rule;
          (rule, enabled)
        end
        else (rule, current))
      t.rules;
  (match !toggled with
  | Some rule -> if enabled then after_rule_enabled t rule else after_rule_disabled t name
  | None -> ());
  !found

let exclude t name = set_enabled t name false
let include_rule t name = set_enabled t name true

let remove_rule t name =
  let was_enabled = rule_enabled t name in
  let before = List.length t.rules in
  t.rules <-
    List.filter (fun ((rule : Rule.t), _) -> not (String.equal rule.name name)) t.rules;
  let removed = List.length t.rules < before in
  (* Removing a disabled rule leaves the enabled set — hence every query
     result — unchanged. *)
  if removed && was_enabled then after_rule_disabled t name;
  removed

(* Reclassifying a relationship entity recompiles nothing (compiled
   guards read the classification live) but can change which derivations
   fire — though only for facts that mention the entity. If the entity is
   inactive in the (flushed) closure, the closure's content cannot
   change; declarations that restate the current classification change
   nothing at all. *)
let reclassify t e ~is_class_now ~declare =
  if Relclass.is_class t.relclass e <> is_class_now then begin
    (match t.closure_cache with
    | None -> ()
    | Some _ -> (
        match (try Some (closure t) with Diverged _ -> None) with
        | Some c when not (Closure.entity_active c e) -> ()
        | _ -> drop_cache t));
    declare ();
    t.generation <- t.generation + 1
  end

let declare_class_relationship t e =
  reclassify t e ~is_class_now:true ~declare:(fun () ->
      Relclass.declare_class t.relclass e)

let declare_individual_relationship t e =
  reclassify t e ~is_class_now:false ~declare:(fun () ->
      Relclass.declare_individual t.relclass e)

(* Force the closure (folding any pending inserts) and its lazy caches so
   that subsequent evaluation is mutation-free and can fan out across
   domains. *)
let prepare_readers t = Closure.prepare_readers (closure t)

let mem t fact = Closure.mem (closure t) fact
let closure_computations t = t.computations
let closure_extensions t = t.extensions
let closure_retractions t = t.retractions

let support_size t =
  match t.closure_cache with Some c -> Closure.support_size c | None -> 0

let facts t = Store.to_list t.store

let copy t =
  let fresh =
    {
      uid = Atomic.fetch_and_add next_uid 1;
      symtab = Symtab.create ();
      store = Store.create ();
      relclass = Relclass.copy t.relclass;
      rules = t.rules;
      composition_limit = t.composition_limit;
      max_facts = t.max_facts;
      closure_cache = None;
      pending = [];
      computations = 0;
      extensions = 0;
      retractions = 0;
      generation = 0;
      pool = t.pool;
    }
  in
  (* Re-intern names so the copy owns its symbol table; ids are preserved
     because interning replays in id order. *)
  Symtab.iter (fun id -> ignore (Symtab.intern fresh.symtab (Symtab.name t.symtab id))) t.symtab;
  Store.iter (fun fact -> ignore (Store.add fresh.store fact)) t.store;
  fresh
