type t = {
  uid : int;  (* unique per database; hash key for external caches *)
  symtab : Symtab.t;
  store : Store.t;
  relclass : Relclass.t;
  mutable rules : (Rule.t * bool) list;  (* registration order, enabled flag *)
  mutable composition_limit : int;
  max_facts : int;
  mutable closure_cache : Closure.t option;
  mutable pending : Fact.t list;  (* inserts not yet folded into the cache *)
  mutable computations : int;
  mutable extensions : int;
  mutable generation : int;  (* bumped whenever facts/rules/classes change *)
  mutable pool : Lsdb_exec.Pool.t option;  (* domains for closure rounds & probing *)
}

exception Diverged of int

let axiom_facts =
  [
    Fact.make Entity.inv Entity.inv Entity.inv;  (* ↔ is its own inverse (§3.4) *)
    Fact.make Entity.contra Entity.inv Entity.contra;  (* ⊥ is its own inverse (§3.5) *)
  ]

let next_uid = Atomic.make 0

let create ?(max_facts = 2_000_000) () =
  let t =
    {
      uid = Atomic.fetch_and_add next_uid 1;
      symtab = Symtab.create ();
      store = Store.create ();
      relclass = Relclass.create ();
      rules = List.map (fun rule -> (rule, true)) Builtin_rules.all;
      composition_limit = 1;
      max_facts;
      closure_cache = None;
      pending = [];
      computations = 0;
      extensions = 0;
      generation = 0;
      pool = None;
    }
  in
  List.iter (fun fact -> ignore (Store.add t.store fact)) axiom_facts;
  t

let symtab t = t.symtab
let store t = t.store
let relclass t = t.relclass

let invalidate t =
  t.closure_cache <- None;
  t.pending <- [];
  t.generation <- t.generation + 1

let uid t = t.uid
let generation t = t.generation
let set_pool t pool = t.pool <- pool
let pool t = t.pool

let entity t name = Symtab.intern t.symtab name
let find_entity t name = Symtab.find t.symtab name
let entity_name t e = Symtab.name t.symtab e
let entity_count t = Symtab.cardinal t.symtab

let declare_class_relationship t e =
  Relclass.declare_class t.relclass e;
  invalidate t

let declare_individual_relationship t e =
  Relclass.declare_individual t.relclass e;
  invalidate t

let is_class_relationship t e = Relclass.is_class t.relclass e

let insert t fact =
  let added = Store.add t.store fact in
  (* Insertions extend the cached closure incrementally on next access;
     everything else (removal, rule/class changes) invalidates it. *)
  if added then begin
    t.generation <- t.generation + 1;
    if t.closure_cache <> None then t.pending <- fact :: t.pending
  end;
  added

let insert_names t s r tgt = insert t (Fact.of_names t.symtab s r tgt)
let insert_all t facts = List.iter (fun fact -> ignore (insert t fact)) facts

let remove t fact =
  let removed = Store.remove t.store fact in
  if removed then invalidate t;
  removed

let remove_names t s r tgt =
  match (find_entity t s, find_entity t r, find_entity t tgt) with
  | Some s, Some r, Some tgt -> remove t (Fact.make s r tgt)
  | _ -> false

let mem_base t fact = Store.mem t.store fact
let base_cardinal t = Store.cardinal t.store

let add_rule t rule =
  t.rules <-
    List.filter (fun (existing, _) -> not (Rule.equal_name existing rule)) t.rules
    @ [ (rule, true) ];
  invalidate t

let set_enabled t name enabled =
  let found = ref false in
  t.rules <-
    List.map
      (fun ((rule : Rule.t), current) ->
        if String.equal rule.name name then begin
          found := true;
          if current <> enabled then invalidate t;
          (rule, enabled)
        end
        else (rule, current))
      t.rules;
  !found

let exclude t name = set_enabled t name false
let include_rule t name = set_enabled t name true

let remove_rule t name =
  let before = List.length t.rules in
  t.rules <- List.filter (fun ((rule : Rule.t), _) -> not (String.equal rule.name name)) t.rules;
  let removed = List.length t.rules < before in
  if removed then invalidate t;
  removed

let rule_enabled t name =
  List.exists (fun ((rule : Rule.t), enabled) -> enabled && String.equal rule.name name) t.rules

let rules t = t.rules
let enabled_rules t = List.filter_map (fun (rule, enabled) -> if enabled then Some rule else None) t.rules

let set_limit t n =
  if n < 1 then invalid_arg "Database.set_limit: limit must be >= 1";
  t.composition_limit <- n

let limit t = t.composition_limit

let closure t =
  match t.closure_cache with
  | Some closure when t.pending = [] -> closure
  | Some closure ->
      let facts = List.rev t.pending in
      t.pending <- [];
      t.extensions <- t.extensions + 1;
      (try ignore (Closure.extend ~max_facts:t.max_facts ?pool:t.pool closure facts)
       with Closure.Diverged n -> raise (Diverged n));
      closure
  | None ->
      let is_class = Relclass.is_class t.relclass in
      (* Inversion is stratified: it applies to stored facts only (see
         Closure.compute). *)
      let staged, main =
        List.partition
          (fun (rule : Rule.t) -> String.equal rule.name "inversion")
          (enabled_rules t)
      in
      let compile = List.map (Rule.compile ~is_class) in
      let closure =
        try
          Closure.compute ~max_facts:t.max_facts ?pool:t.pool
            ~staged_rules:(compile staged) ~rules:(compile main) t.store
        with Closure.Diverged n -> raise (Diverged n)
      in
      t.closure_cache <- Some closure;
      t.computations <- t.computations + 1;
      closure

(* Force the closure (folding any pending inserts) and its lazy caches so
   that subsequent evaluation is mutation-free and can fan out across
   domains. *)
let prepare_readers t = Closure.prepare_readers (closure t)

let mem t fact = Closure.mem (closure t) fact
let closure_computations t = t.computations
let closure_extensions t = t.extensions
let facts t = Store.to_list t.store

let copy t =
  let fresh =
    {
      uid = Atomic.fetch_and_add next_uid 1;
      symtab = Symtab.create ();
      store = Store.create ();
      relclass = Relclass.copy t.relclass;
      rules = t.rules;
      composition_limit = t.composition_limit;
      max_facts = t.max_facts;
      closure_cache = None;
      pending = [];
      computations = 0;
      extensions = 0;
      generation = 0;
      pool = t.pool;
    }
  in
  (* Re-intern names so the copy owns its symbol table; ids are preserved
     because interning replays in id order. *)
  Symtab.iter (fun id -> ignore (Symtab.intern fresh.symtab (Symtab.name t.symtab id))) t.symtab;
  Store.iter (fun fact -> ignore (Store.add fresh.store fact)) t.store;
  fresh
