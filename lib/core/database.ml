module Magic = Lsdb_datalog.Magic
module Governor = Lsdb_exec.Governor

(* Mutations not yet folded into the cached closure, in arrival order.
   Inserts extend, retracts delete/rederive; both are incremental. *)
type op = Insert of Fact.t | Retract of Fact.t

(* How the closure is served to the match/eval/probing layers. [Eager]
   materializes the whole closure ({!Closure.compute}); [Demand] derives
   only the cone each goal touches ({!Lsdb_datalog.Magic}), with the
   eager path retained as the correctness oracle. *)
type closure_mode = Eager | Demand

type t = {
  uid : int;  (* unique per database; hash key for external caches *)
  symtab : Symtab.t;
  store : Store.t;
  relclass : Relclass.t;
  mutable rules : (Rule.t * bool) list;  (* registration order, enabled flag *)
  mutable composition_limit : int;
  max_facts : int;
  mutable closure_cache : Closure.t option;
  mutable pending : op list;  (* reversed: newest first *)
  mutable closure_mode : closure_mode;
  mutable demand_cache : Magic.t option;  (* demand state; generation-free, kept
                                             in sync via [demand_pending] *)
  mutable demand_pending : op list;  (* reversed: newest first *)
  mutable demand_domain : (int * Entity.t list) option;  (* generation-keyed *)
  mutable computations : int;
  mutable extensions : int;
  mutable retractions : int;
  mutable generation : int;  (* bumped whenever facts/rules/classes change *)
  mutable pool : Lsdb_exec.Pool.t option;  (* domains for closure rounds & probing *)
  mutable governor : Governor.t option;  (* per-query budgets/cancellation *)
  (* The cached closure is a (sound) subset of the true closure: a
     governor tripped while computing or maintaining it. Served as-is for
     the rest of the governed query; discarded at the next governor
     change ({!set_governor}), which also bumps the generation so
     external answer caches filled from it miss. *)
  mutable closure_partial : bool;
}

exception Diverged of int

let axiom_facts =
  [
    Fact.make Entity.inv Entity.inv Entity.inv;  (* ↔ is its own inverse (§3.4) *)
    Fact.make Entity.contra Entity.inv Entity.contra;  (* ⊥ is its own inverse (§3.5) *)
  ]

let next_uid = Atomic.make 0

let create ?(max_facts = 2_000_000) ?(shards = 1) () =
  let t =
    {
      uid = Atomic.fetch_and_add next_uid 1;
      symtab = Symtab.create ();
      store = Store.create ~shards ();
      relclass = Relclass.create ();
      rules = List.map (fun rule -> (rule, true)) Builtin_rules.all;
      composition_limit = 1;
      max_facts;
      closure_cache = None;
      pending = [];
      closure_mode = Eager;
      demand_cache = None;
      demand_pending = [];
      demand_domain = None;
      computations = 0;
      extensions = 0;
      retractions = 0;
      generation = 0;
      pool = None;
      governor = None;
      closure_partial = false;
    }
  in
  List.iter (fun fact -> ignore (Store.add t.store fact)) axiom_facts;
  t

let symtab t = t.symtab
let store t = t.store
let relclass t = t.relclass

let drop_demand t =
  t.demand_cache <- None;
  t.demand_pending <- [];
  t.demand_domain <- None

let invalidate t =
  t.closure_cache <- None;
  t.pending <- [];
  t.closure_partial <- false;
  drop_demand t;
  t.generation <- t.generation + 1

let uid t = t.uid
let generation t = t.generation
let shards t = Store.shards t.store

(* Re-partition the heap in place. The closure dispatcher keys off the
   store's shard count, so dropping the caches is all that's needed for
   the next access to come up on the right implementation. *)
let set_shards t n =
  let n = max 1 n in
  if n <> Store.shards t.store then begin
    Store.reshard t.store n;
    invalidate t
  end
let set_pool t pool = t.pool <- pool
let pool t = t.pool

let entity t name = Symtab.intern t.symtab name
let find_entity t name = Symtab.find t.symtab name
let entity_name t e = Symtab.name t.symtab e
let entity_count t = Symtab.cardinal t.symtab

let is_class_relationship t e = Relclass.is_class t.relclass e

let insert t fact =
  let added = Store.add t.store fact in
  (* Insertions and removals both maintain the cached closure
     incrementally on next access (semi-naive extension, delete/rederive
     retraction); only rule/class changes that provably alter the
     closure's content invalidate it. *)
  if added then begin
    t.generation <- t.generation + 1;
    if t.closure_cache <> None then t.pending <- Insert fact :: t.pending;
    if t.demand_cache <> None then t.demand_pending <- Insert fact :: t.demand_pending
  end;
  added

let insert_names t s r tgt = insert t (Fact.of_names t.symtab s r tgt)
let insert_all t facts = List.iter (fun fact -> ignore (insert t fact)) facts

let remove t fact =
  let removed = Store.remove t.store fact in
  if removed then begin
    t.generation <- t.generation + 1;
    if t.closure_cache <> None then t.pending <- Retract fact :: t.pending;
    if t.demand_cache <> None then t.demand_pending <- Retract fact :: t.demand_pending
  end;
  removed

let remove_names t s r tgt =
  match (find_entity t s, find_entity t r, find_entity t tgt) with
  | Some s, Some r, Some tgt -> remove t (Fact.make s r tgt)
  | _ -> false

let mem_base t fact = Store.mem t.store fact
let base_cardinal t = Store.cardinal t.store

let rule_enabled t name =
  List.exists (fun ((rule : Rule.t), enabled) -> enabled && String.equal rule.name name) t.rules

let rules t = t.rules
let enabled_rules t = List.filter_map (fun (rule, enabled) -> if enabled then Some rule else None) t.rules

let set_limit t n =
  if n < 1 then invalid_arg "Database.set_limit: limit must be >= 1";
  if n <> t.composition_limit then begin
    t.composition_limit <- n;
    (* The limit changes query-visible composition results, so external
       generation-keyed caches (broadness, answer cache) must miss. *)
    t.generation <- t.generation + 1
  end

let limit t = t.composition_limit

(* Compile the enabled rules against the current relationship
   classification. Inversion is stratified: it applies to stored facts
   only (see Closure.compute). *)
let compiled_rules t =
  let is_class = Relclass.is_class t.relclass in
  let staged, main =
    List.partition
      (fun (rule : Rule.t) -> String.equal rule.name "inversion")
      (enabled_rules t)
  in
  let compile = List.map (Rule.compile ~is_class) in
  (compile staged, compile main)

(* Fold the pending mutations into the cached closure, batching runs of
   same-kind ops: consecutive inserts become one extension, consecutive
   retracts one delete/rederive pass. Order across kinds is preserved —
   an insert after a retract of the same fact must win, and vice versa. *)
let flush_pending t closure =
  let flush kind batch =
    let facts = List.rev batch in
    match kind with
    | `Insert ->
        t.extensions <- t.extensions + 1;
        ignore
          (Closure.extend ~max_facts:t.max_facts ?pool:t.pool ?gov:t.governor
             closure facts)
    | `Retract ->
        t.retractions <- t.retractions + 1;
        ignore
          (Closure.retract ~max_facts:t.max_facts ?pool:t.pool ?gov:t.governor
             closure facts)
  in
  let rec go kind batch = function
    | [] -> if batch <> [] then flush kind batch
    | Insert fact :: rest ->
        if kind = `Insert then go `Insert (fact :: batch) rest
        else begin
          if batch <> [] then flush kind batch;
          go `Insert [ fact ] rest
        end
    | Retract fact :: rest ->
        if kind = `Retract then go `Retract (fact :: batch) rest
        else begin
          if batch <> [] then flush kind batch;
          go `Retract [ fact ] rest
        end
  in
  let ops = List.rev t.pending in
  t.pending <- [];
  go `Insert [] ops

(* A governed computation that tripped leaves a sound subset: remember
   that the cache is partial so the next governor change discards it
   (recomputing on every access within the same over-budget query would
   make each one O(closure)). *)
let note_partial t =
  if Governor.is_tripped t.governor then t.closure_partial <- true

let closure t =
  match t.closure_cache with
  | Some closure when t.pending = [] -> closure
  | Some closure ->
      (try
         flush_pending t closure;
         note_partial t
       with Closure.Diverged n ->
         (* The cache is part-way through the batch; discard it. *)
         t.closure_cache <- None;
         raise (Diverged n));
      closure
  | None ->
      let staged_rules, rules = compiled_rules t in
      let closure =
        try
          Closure.compute ~max_facts:t.max_facts ?pool:t.pool ?gov:t.governor
            ~staged_rules ~rules t.store
        with Closure.Diverged n -> raise (Diverged n)
      in
      t.closure_cache <- Some closure;
      t.computations <- t.computations + 1;
      note_partial t;
      closure

(* --- demand-driven closure ------------------------------------------- *)

let set_closure_mode t mode =
  if mode <> t.closure_mode then begin
    t.closure_mode <- mode;
    (* Answer enumeration order can differ between modes (demand answers
       are sorted); external generation-keyed caches must miss. *)
    t.generation <- t.generation + 1
  end

let closure_mode t = t.closure_mode

(* The demand state mirrors the closure cache's lifecycle: built lazily,
   maintained incrementally through the pending ops (applied one at a
   time — Magic.insert extends the demanded cones semi-naively,
   Magic.retract is delete/rederive), dropped on rule/class changes. *)
let demand_state t =
  let m =
    match t.demand_cache with
    | Some m -> m
    | None ->
        let staged_rules, rules = compiled_rules t in
        let m =
          (* The store already indexes every bound-position combination;
             evaluate demand over it directly rather than copying the
             base — cold opens then cost only the demanded cone. *)
          Magic.create_shared ~max_facts:t.max_facts ~staged_rules ~rules
            {
              Magic.bv_iter =
                (fun ~s ~r ~tgt f ->
                  Store.match_pattern t.store (Store.pattern ?s ?r ?t:tgt ()) f);
              bv_mem = (fun fact -> Store.mem t.store fact);
              bv_count =
                (fun ~s ~r ~tgt ->
                  Store.count_matches t.store (Store.pattern ?s ?r ?t:tgt ()));
              bv_count_s =
                (fun e -> Store.count_matches t.store (Store.pattern ~s:e ()));
              bv_count_t =
                (fun e -> Store.count_matches t.store (Store.pattern ~t:e ()));
              bv_cardinal = (fun () -> Store.cardinal t.store);
            }
        in
        t.demand_cache <- Some m;
        m
  in
  Magic.set_governor m t.governor;
  (match t.demand_pending with
  | [] -> ()
  | pending ->
      t.demand_pending <- [];
      List.iter
        (function Insert fact -> Magic.insert m fact | Retract fact -> Magic.retract m fact)
        (List.rev pending));
  m

let with_demand t f =
  try f (demand_state t)
  with Magic.Diverged n ->
    drop_demand t;
    raise (Diverged n)

let pat_parts (pat : Store.pattern) = (pat.s, pat.r, pat.t)

(* Mode-aware closure accessors: the hot paths (match layer, eval,
   probing, integrity, composition, broadness) go through these. Any
   remaining caller of [closure t] in demand mode transparently forces
   the eager closure — correct everywhere, just not goal-directed. *)

let closure_match t pat f =
  match t.closure_mode with
  | Eager -> Closure.match_pattern (closure t) pat f
  | Demand ->
      let s, r, tgt = pat_parts pat in
      with_demand t (fun m -> Magic.demand m ~s ~r ~tgt f)

let closure_mem t fact =
  match t.closure_mode with
  | Eager -> Closure.mem (closure t) fact
  | Demand -> with_demand t (fun m -> Magic.mem m fact)

(* Selectivity estimate for join planning: eager asks the materialized
   closure; demand counts base + already-derived cone postings without
   deriving anything. A heuristic either way — plans may differ across
   modes, answer sets cannot. *)
let count_hint t pat =
  match t.closure_mode with
  | Eager -> Closure.count_pattern (closure t) pat
  | Demand ->
      let s, r, tgt = pat_parts pat in
      with_demand t (fun m -> Magic.count_hint m ~s ~r ~tgt)

let out_degree_hint t e =
  match t.closure_mode with
  | Eager -> Closure.out_degree (closure t) e
  | Demand -> with_demand t (fun m -> Magic.degree_out m e)

let in_degree_hint t e =
  match t.closure_mode with
  | Eager -> Closure.in_degree (closure t) e
  | Demand -> with_demand t (fun m -> Magic.degree_in m e)

let entity_in_closure t e =
  match t.closure_mode with
  | Eager -> Closure.entity_active (closure t) e
  | Demand ->
      with_demand t (fun m ->
          Store.entity_active t.store e || Magic.entity_occurs m e)

(* --- two-pattern intersection ---------------------------------------- *)

module Index = Lsdb_datalog.Index

let hinge_pattern (h : Index.hinge) =
  match h with
  | Index.Out { s; r } -> Store.pattern ~s ~r ()
  | Index.In { r; t } -> Store.pattern ~r ~t ()
  | Index.Via { s; t } -> Store.pattern ~s ~t ()

let hinge_free (h : Index.hinge) (fact : Fact.t) =
  match h with
  | Index.Out _ -> fact.Lsdb_datalog.Triple.t
  | Index.In _ -> fact.Lsdb_datalog.Triple.s
  | Index.Via _ -> fact.Lsdb_datalog.Triple.r

(* [intersect_join t h1 h2 emit]: every entity filling both hinges' free
   position, once each. The eager single-heap path gallops the closure
   index's packed postings directly; sharded and demand modes fall back
   to a hash semi-join over [closure_match] — enumerate the smaller
   hinge (by {!count_hint}) into a set, probe with the larger. Demand
   mode thereby issues exactly two pattern demands. *)
let intersect_join t h1 h2 emit =
  let galloped =
    match t.closure_mode with
    | Eager -> Closure.intersect (closure t) h1 h2 emit
    | Demand -> false
  in
  if not galloped then begin
    let p1 = hinge_pattern h1 and p2 = hinge_pattern h2 in
    let small_h, small_p, big_h, big_p =
      if count_hint t p1 <= count_hint t p2 then (h1, p1, h2, p2)
      else (h2, p2, h1, p1)
    in
    let seen = Hashtbl.create 64 in
    closure_match t small_p (fun fact ->
        Hashtbl.replace seen (hinge_free small_h fact) ());
    closure_match t big_p (fun fact ->
        let v = hinge_free big_h fact in
        if Hashtbl.mem seen v then begin
          (* Remove before emitting: each entity exactly once. *)
          Hashtbl.remove seen v;
          emit v
        end)
  end

exception Intersect_hit

let intersect_exists t h1 h2 =
  try
    intersect_join t h1 h2 (fun _ -> raise Intersect_hit);
    false
  with Intersect_hit -> true

(* --- tier introspection (shell [.stats]) ------------------------------ *)

(* Non-forcing: report whatever caches exist rather than computing a
   closure just to measure it. *)
let tier_stats t =
  let acc =
    match t.closure_cache with
    | Some c -> Closure.tier_stats c
    | None -> Index.zero_stats
  in
  match t.demand_cache with
  | Some m -> Index.sum_stats acc (Magic.tier_stats m)
  | None -> acc

let reshard_hint t =
  match t.closure_cache with
  | Some c -> Closure.reshard_hint c
  | None -> None

(* The active domain in demand mode, without forcing the closure: every
   entity of a derived fact is propagated from some base fact or is a
   rule-head constant, so the exact domain is the store's active entities
   plus each enabled head constant that {!entity_in_closure} confirms.
   Memoized per generation — the virtual-facts layer re-forces the
   domain thunk repeatedly. *)
let demand_domain t m =
  match t.demand_domain with
  | Some (g, entities) when g = t.generation -> entities
  | _ ->
      let seen = Hashtbl.create 256 in
      Seq.iter (fun e -> Hashtbl.replace seen e ()) (Store.active_entities t.store);
      let staged_rules, rules = compiled_rules t in
      let add_head_consts (rule : Lsdb_datalog.Rule.t) =
        List.iter
          (fun (atom : Lsdb_datalog.Atom.t) ->
            List.iter
              (function
                | Lsdb_datalog.Term.Const c ->
                    if (not (Hashtbl.mem seen c)) && Magic.entity_occurs m c then
                      Hashtbl.replace seen c ()
                | Lsdb_datalog.Term.Var _ -> ())
              [ atom.s; atom.r; atom.t ])
          rule.heads
      in
      List.iter add_head_consts staged_rules;
      List.iter add_head_consts rules;
      let entities =
        List.sort Entity.compare (Hashtbl.fold (fun e () acc -> e :: acc) seen [])
      in
      t.demand_domain <- Some (t.generation, entities);
      entities

let active_domain t =
  match t.closure_mode with
  | Eager -> Closure.active_entities (closure t)
  | Demand -> with_demand t (fun m -> List.to_seq (demand_domain t m))

let demand_stats t =
  match (t.closure_mode, t.demand_cache) with
  | Demand, _ -> Some (with_demand t Magic.stats)
  | Eager, Some m -> Some (Magic.stats m)
  | Eager, None -> None

(* --- rule and classification changes -------------------------------- *)

(* Rule toggles fall back to a full recompute only when the touched rule
   provably matters to the closure's content; otherwise the cache is kept
   and its compiled rule set swapped for future incremental maintenance.
   Either way the generation is bumped: external caches key query results
   on it, and composition/virtual layers can see the rule list. *)

let drop_cache t =
  t.closure_cache <- None;
  t.pending <- [];
  t.closure_partial <- false

(* Install (or clear) the per-query governor. Partial state left behind
   by a tripped predecessor is discarded here — this transition is the
   only path out of a sticky trip — and the generation is bumped with it,
   so generation-keyed external caches (match-layer answers, broadness)
   filled from the partial closure miss from now on. Untripped
   transitions cost two field writes. *)
let set_governor t gov =
  if t.closure_partial then begin
    drop_cache t;
    t.generation <- t.generation + 1
  end;
  (match t.demand_cache with
  | Some m when Magic.poisoned m ->
      drop_demand t;
      t.generation <- t.generation + 1
  | _ -> ());
  t.governor <- gov;
  match t.demand_cache with
  | Some m -> Magic.set_governor m gov
  | None -> ()

let governor t = t.governor

let governor_tripped t =
  match t.governor with None -> None | Some gov -> Governor.tripped gov

let closure_partial t = t.closure_partial

(* After disabling/removing the enabled rule [name]: the closure content
   is unchanged iff no fact's recorded derivation uses [name] (each such
   fact is then derivable without it, and recorded derivations are
   well-founded). The flush inside [closure t] runs first, so the check
   covers pending mutations too. *)
let after_rule_disabled t name =
  t.generation <- t.generation + 1;
  (* Demand state is cheap to rebuild (nothing is derived until the next
     goal), so any rule toggle just drops it. *)
  drop_demand t;
  match t.closure_cache with
  | None -> ()
  | Some _ -> (
      match (try Some (closure t) with Diverged _ -> None) with
      | Some c when not (List.mem_assoc name (Closure.rule_counts c)) ->
          let staged_rules, rules = compiled_rules t in
          Closure.set_rules c ~staged_rules ~rules
      | _ -> drop_cache t)

(* After enabling [rule]: the closure content is unchanged iff one
   application round of the rule over it yields nothing new. Enabling
   inversion always recomputes — it runs in its own stratum, and a cache
   computed without a stage cannot grow one. *)
let after_rule_enabled t (rule : Rule.t) =
  t.generation <- t.generation + 1;
  drop_demand t;
  match t.closure_cache with
  | None -> ()
  | Some _ ->
      if String.equal rule.name "inversion" then drop_cache t
      else (
        match (try Some (closure t) with Diverged _ -> None) with
        | Some c
          when Closure.closed_under c
                 [ Rule.compile ~is_class:(Relclass.is_class t.relclass) rule ] ->
            let staged_rules, rules = compiled_rules t in
            Closure.set_rules c ~staged_rules ~rules
        | _ -> drop_cache t)

let add_rule t rule =
  let replaced =
    List.exists (fun (existing, _) -> Rule.equal_name existing rule) t.rules
  in
  t.rules <-
    List.filter (fun (existing, _) -> not (Rule.equal_name existing rule)) t.rules
    @ [ (rule, true) ];
  if replaced then invalidate t else after_rule_enabled t rule

let set_enabled t name enabled =
  let found = ref false in
  let toggled = ref None in
  t.rules <-
    List.map
      (fun ((rule : Rule.t), current) ->
        if String.equal rule.name name then begin
          found := true;
          if current <> enabled then toggled := Some rule;
          (rule, enabled)
        end
        else (rule, current))
      t.rules;
  (match !toggled with
  | Some rule -> if enabled then after_rule_enabled t rule else after_rule_disabled t name
  | None -> ());
  !found

let exclude t name = set_enabled t name false
let include_rule t name = set_enabled t name true

let remove_rule t name =
  let was_enabled = rule_enabled t name in
  let before = List.length t.rules in
  t.rules <-
    List.filter (fun ((rule : Rule.t), _) -> not (String.equal rule.name name)) t.rules;
  let removed = List.length t.rules < before in
  (* Removing a disabled rule leaves the enabled set — hence every query
     result — unchanged. *)
  if removed && was_enabled then after_rule_disabled t name;
  removed

(* Reclassifying a relationship entity recompiles nothing (compiled
   guards read the classification live) but can change which derivations
   fire — though only for facts that mention the entity. If the entity is
   inactive in the (flushed) closure, the closure's content cannot
   change; declarations that restate the current classification change
   nothing at all. *)
let reclassify t e ~is_class_now ~declare =
  if Relclass.is_class t.relclass e <> is_class_now then begin
    (* Compiled guards read the classification live, so the demand
       state's past derivations may no longer be justified: rebuild. *)
    drop_demand t;
    (match t.closure_cache with
    | None -> ()
    | Some _ -> (
        match (try Some (closure t) with Diverged _ -> None) with
        | Some c when not (Closure.entity_active c e) -> ()
        | _ -> drop_cache t));
    declare ();
    t.generation <- t.generation + 1
  end

let declare_class_relationship t e =
  reclassify t e ~is_class_now:true ~declare:(fun () ->
      Relclass.declare_class t.relclass e)

let declare_individual_relationship t e =
  reclassify t e ~is_class_now:false ~declare:(fun () ->
      Relclass.declare_individual t.relclass e)

(* Force the closure (folding any pending inserts) and its lazy caches so
   that subsequent evaluation is mutation-free and can fan out across
   domains. *)
let prepare_readers t = Closure.prepare_readers (closure t)

let mem t fact = closure_mem t fact
let closure_computations t = t.computations
let closure_extensions t = t.extensions
let closure_retractions t = t.retractions

let support_size t =
  match t.closure_cache with Some c -> Closure.support_size c | None -> 0

let facts t = Store.to_list t.store

let copy t =
  let fresh =
    {
      uid = Atomic.fetch_and_add next_uid 1;
      symtab = Symtab.create ();
      store = Store.create ~shards:(Store.shards t.store) ();
      relclass = Relclass.copy t.relclass;
      rules = t.rules;
      composition_limit = t.composition_limit;
      max_facts = t.max_facts;
      closure_cache = None;
      pending = [];
      closure_mode = t.closure_mode;
      demand_cache = None;
      demand_pending = [];
      demand_domain = None;
      computations = 0;
      extensions = 0;
      retractions = 0;
      generation = 0;
      pool = t.pool;
      governor = None;
      closure_partial = false;
    }
  in
  (* Re-intern names so the copy owns its symbol table; ids are preserved
     because interning replays in id order. *)
  Symtab.iter (fun id -> ignore (Symtab.intern fresh.symtab (Symtab.name t.symtab id))) t.symtab;
  Store.iter (fun fact -> ignore (Store.add fresh.store fact)) t.store;
  fresh

