(** A loosely structured database: a set of facts and a set of rules whose
    closure is meant to be free of contradictions (§2.6).

    The database owns the symbol table, the fact heap, the relationship
    classification, the rule set (builtins pre-included, §6.1
    [include]/[exclude] supported) and a lazily maintained closure cache.
    Fact insertions and removals maintain the cache incrementally
    (semi-naive extension, delete/rederive retraction); rule toggles and
    reclassifications fall back to a recompute only when the change
    provably affects the closure's content. Contradiction checking itself
    lives in {!Integrity} so that callers choose when to pay for it. *)

type t

(** [create ()] — a fresh database containing only the axiom facts
    [(↔,↔,↔)] and [(⊥,↔,⊥)] (§3.4, §3.5), with every builtin rule of §3
    enabled and composition disabled ([limit 1]).

    [shards] hash-partitions the fact heap by source entity
    ({!Lsdb_datalog.Shard}) and makes closure maintenance run through the
    sharded read-through implementation ({!Closure.compute}'s dispatch).
    Query results are identical at every shard count; enumeration order
    is not. Default [1] — the classic single heap. *)
val create : ?max_facts:int -> ?shards:int -> unit -> t

(** Current shard count of the fact heap ([>= 1]). *)
val shards : t -> int

(** [set_shards t n] re-partitions the heap in place ([O(heap)]) and
    drops the closure/demand caches (the next access recomputes on the
    new layout, choosing the matching closure implementation). Bumps the
    generation. No-op when [n] equals the current count. *)
val set_shards : t -> int -> unit

(** The two axiom facts seeded into every database: [(↔,↔,↔)] and
    [(⊥,↔,⊥)] (§3.4, §3.5). *)
val axiom_facts : Fact.t list

val symtab : t -> Symtab.t
val store : t -> Store.t
val relclass : t -> Relclass.t

(** A process-unique id for this database — a stable hash key for
    external per-database caches (see {!Broadness.of_db}). *)
val uid : t -> int

(** Monotone mutation counter: bumped by every change to the fact set,
    rules or classifications. Anything derived purely from the database
    contents (closure, broadness) is valid as long as the generation it
    was computed at is still current. *)
val generation : t -> int

(** {1 Multicore execution} *)

(** [set_pool t (Some pool)] makes closure computation shard its
    semi-naive rounds across [pool]'s domains, and makes
    [Probing.probe] evaluate retraction waves in parallel by default.
    Results are byte-identical to the sequential path. The database does
    not own the pool: callers shut it down. *)
val set_pool : t -> Lsdb_exec.Pool.t option -> unit

val pool : t -> Lsdb_exec.Pool.t option

(** Force the closure (folding pending inserts) and its lazy caches so
    that evaluation afterwards is mutation-free: required from a single
    domain before fanning read-only query evaluation out across domains.
    [Probing.probe] calls this itself before parallel waves. *)
val prepare_readers : t -> unit

(** {1 Query governor}

    A per-query {!Lsdb_exec.Governor.t} (deadline, fact/work/wave
    budgets, cancellation token) threaded through every long-running
    evaluation loop. Install one before a query, clear it after: a trip
    is sticky, and the [set_governor] transition is what discards any
    partial state the tripped query left behind (partial closure cache,
    poisoned demand memos), bumping {!generation} so external caches
    filled from partial answers miss. When the installed governor never
    trips, results are byte-identical to ungoverned evaluation and the
    transition costs two field writes. *)

val set_governor : t -> Lsdb_exec.Governor.t option -> unit
val governor : t -> Lsdb_exec.Governor.t option

(** The installed governor's sticky trip reason, if any — how callers
    detect that answers just computed are partial. *)
val governor_tripped : t -> Lsdb_exec.Governor.reason option

(** Is the cached closure a (sound) subset left behind by a tripped
    governor? *)
val closure_partial : t -> bool

(** {1 Entities} *)

(** Intern (or look up) an entity by name. *)
val entity : t -> string -> Entity.t

val find_entity : t -> string -> Entity.t option
val entity_name : t -> Entity.t -> string
val entity_count : t -> int

(** Declare a relationship to be a class relationship (§2.2), e.g.
    TOTAL-NUMBER. A declaration that changes the classification of an
    entity active in the closure invalidates the cache; restating the
    current classification, or reclassifying an entity the closure never
    mentions, costs nothing. *)
val declare_class_relationship : t -> Entity.t -> unit

val declare_individual_relationship : t -> Entity.t -> unit
val is_class_relationship : t -> Entity.t -> bool

(** {1 Facts} *)

(** [insert t fact] — [true] iff new. The cached closure is extended
    incrementally on next access. *)
val insert : t -> Fact.t -> bool

(** [insert_names t s r tgt] interns the names and inserts. *)
val insert_names : t -> string -> string -> string -> bool

val insert_all : t -> Fact.t list -> unit

(** [remove t fact] — [true] iff present (only base facts can be removed;
    derived facts disappear when their premises do — incrementally, by
    delete/rederive on next access; a removed base fact that is still
    derivable stays in the closure as a derived fact). *)
val remove : t -> Fact.t -> bool

val remove_names : t -> string -> string -> string -> bool

(** Base facts only (no inference). *)
val mem_base : t -> Fact.t -> bool

val base_cardinal : t -> int

(** {1 Rules} *)

(** [add_rule t rule] registers (and enables) a rule; replaces any rule of
    the same name. The closure cache survives when the rule provably adds
    nothing (the closure is already closed under it); a replacement
    always invalidates. *)
val add_rule : t -> Rule.t -> unit

(** [exclude t name] disables a rule without forgetting it (§6.1). [true]
    iff the rule exists. The closure cache survives when the rule
    contributed no recorded derivation ({!Closure.rule_counts}). *)
val exclude : t -> string -> bool

(** [include_rule t name] re-enables a rule (§6.1). *)
val include_rule : t -> string -> bool

(** [remove_rule t name] forgets a rule entirely. [true] iff it existed. *)
val remove_rule : t -> string -> bool

val rule_enabled : t -> string -> bool

(** All registered rules with their enabled flag. *)
val rules : t -> (Rule.t * bool) list

val enabled_rules : t -> Rule.t list

(** {1 Composition (§3.7, §6.1)} *)

(** [set_limit t n] sets the maximal composition-chain length to [n]
    ([limit(n)]): 1 disables composition, 2 composes base facts only, etc.
    Raises [Invalid_argument] for [n < 1]. *)
val set_limit : t -> int -> unit

val limit : t -> int

(** {1 Closure} *)

exception Diverged of int

(** The cached closure, recomputed if a mutation occurred. *)
val closure : t -> Closure.t

(** [mem t fact] — membership in the closure (stored or inferred).
    Mode-aware: see {!closure_mode}. *)
val mem : t -> Fact.t -> bool

(** {1 Closure mode (demand-driven evaluation)}

    [Eager] (the default) materializes the whole closure up front and
    serves every goal from it. [Demand] routes the hot paths (match
    layer, eval, probing, integrity, composition, broadness) through a
    magic-sets state ({!Lsdb_datalog.Magic}) that derives only the cone
    of facts each goal can touch, memoizing demanded cones for the
    lifetime of the heap and maintaining them incrementally under
    insertion (semi-naive) and retraction (delete/rederive). Rule or
    classification changes rebuild the demand state from scratch.

    Answer {e sets} are identical in both modes (the eager closure is the
    retained oracle; see DESIGN.md); enumeration {e order} may differ —
    demand answers arrive in [Fact.compare] order. Code that calls
    {!closure} directly in demand mode (explain, save, …) transparently
    falls back to forcing the eager closure. *)

type closure_mode = Eager | Demand

(** Switching modes keeps both caches but bumps the generation, so
    order-sensitive external caches miss. *)
val set_closure_mode : t -> closure_mode -> unit

val closure_mode : t -> closure_mode

(** [closure_match t pat f] — every closure fact matching [pat], through
    the current mode. *)
val closure_match : t -> Store.pattern -> (Fact.t -> unit) -> unit

val closure_mem : t -> Fact.t -> bool

(** Upper bound on the facts {!closure_match} would enumerate — a join
    planning heuristic (eager: exact posting lengths; demand: base plus
    already-derived cones, never deriving). *)
val count_hint : t -> Store.pattern -> int

val out_degree_hint : t -> Entity.t -> int
val in_degree_hint : t -> Entity.t -> int

(** [intersect_join t h1 h2 emit] — every entity that fills both hinges'
    free position (see {!Lsdb_datalog.Index.hinge}), exactly once each,
    in unspecified order. On the eager single-heap path this gallops the
    closure index's packed frozen postings plus delta cells; sharded and
    demand modes run a hash semi-join over {!closure_match}, enumerating
    the smaller hinge (by {!count_hint}) into a set and probing with the
    larger. Demand mode issues exactly two pattern demands. *)
val intersect_join :
  t ->
  Lsdb_datalog.Index.hinge ->
  Lsdb_datalog.Index.hinge ->
  (Entity.t -> unit) ->
  unit

(** [intersect_exists t h1 h2] — does any entity fill both hinges? Early
    exit on the first hit. *)
val intersect_exists :
  t -> Lsdb_datalog.Index.hinge -> Lsdb_datalog.Index.hinge -> bool

(** Frozen/delta posting-tier sizes summed over whatever closure/demand
    caches currently exist (never forces a computation). *)
val tier_stats : t -> Lsdb_datalog.Index.tier_stats

(** Pending reshard suggestion [(shard, permille, streak)] from the
    sharded closure's imbalance tracker, if any. *)
val reshard_hint : t -> (int * int * int) option

(** Entities occurring in some closure fact (the paper's active domain).
    In demand mode this is computed exactly without materializing the
    closure: base actives plus rule-head constants verified present. *)
val active_domain : t -> Entity.t Seq.t

val entity_in_closure : t -> Entity.t -> bool

(** Statistics of the demand state, if one exists (forced into existence
    when the mode is [Demand]). *)
val demand_stats : t -> Lsdb_datalog.Magic.stats option

(** Force invalidation (rarely needed; mutations do it automatically). *)
val invalidate : t -> unit

(** Number of full closure recomputations so far (for tests/benches).
    Neither insertions nor removals trigger recomputation: the cached
    closure is maintained incrementally in both directions. Rule and
    classification changes recompute only when they provably affect the
    closure's content. *)
val closure_computations : t -> int

(** Number of incremental extensions applied to the cached closure. *)
val closure_extensions : t -> int

(** Number of incremental retractions (delete/rederive passes) applied to
    the cached closure. *)
val closure_retractions : t -> int

(** Edges in the closure's support indexes (premise ↦ dependents); [0]
    with no cache or before the first retraction builds them. *)
val support_size : t -> int

(** {1 Bulk access} *)

val facts : t -> Fact.t list

(** A deep copy sharing nothing with the original. *)
val copy : t -> t

