(** Browsing by probing (§5.2): attempt a query; on failure, automatically
    attempt its retraction set, wave by wave, reporting every success with
    the generalizations that produced it — the paper's
    "Query failed. Retrying…" menu.

    Wave [k] holds the queries reachable from the original by [k] minimal
    broadening steps. The process stops at the first wave with a success,
    or when no query can be broadened further, or at [max_waves]. *)

(** A successful retraction query. *)
type success = {
  query : Query.t;
  steps : Retraction.step list;  (** broadening chain, first step first *)
  answer : Eval.answer;
}

type outcome =
  | Answered of Eval.answer  (** the original query succeeded *)
  | Retracted of {
      wave : int;  (** wave index (1 = the §5.1 retraction set) *)
      successes : success list;
      attempted : int;  (** queries evaluated in the successful wave *)
      critical : bool;
          (** every query of the wave succeeded — the paper's "critical
              point", isolating exactly where the database cannot satisfy
              the query *)
    }
  | Exhausted of {
      waves : int;  (** waves fully explored *)
      attempted : int;  (** total broadened queries evaluated *)
      unknown_entities : Entity.t list;
          (** query entities appearing in no closure fact: the "no such
              database entities" diagnosis for misspellings *)
    }

(** [probe db q] — evaluate and retract automatically. [max_waves]
    defaults to 8; [max_wave_width] (default 512) caps each wave.

    [pool] (defaulting to {!Database.pool}[ db]) evaluates each wave's
    candidate queries across the pool's domains; results are merged back
    in candidate order, so the outcome — successes, their order, wave
    numbers, criticality — is identical to the sequential path. *)
val probe :
  ?policy:Retraction.policy ->
  ?max_waves:int ->
  ?max_wave_width:int ->
  ?opts:Match_layer.opts ->
  ?pool:Lsdb_exec.Pool.t ->
  Database.t ->
  Query.t ->
  outcome

(** Render the §5.2 menu ("Query failed. Retrying …  1. Success with …"). *)
val render_menu : Database.t -> Query.t -> outcome -> string
