(** Inference by composition (§3.7): when the target of one fact is the
    source of another, an indirect relationship is implied, named by a
    composed relationship entity [r1·r2·…·rk].

    Composition facts are never materialized into the closure — unrestricted
    they are infinite-prone, as the paper notes — but enumerated on demand,
    bounded by the database's [limit(n)] (§6.1): a chain may contain at most
    [n] facts, so [limit 1] disables composition and [limit 2] composes base
    facts only. Chains follow closure facts (inferred ones included) whose
    relationship is an ordinary entity (specials and comparators do not
    compose), and the paper's acyclicity restriction applies: the chain's
    overall source must differ from its overall target. *)

(** The separator in composed relationship names. *)
val separator : string

(** [compose_name symtab rels] interns the composed entity for a chain of
    at least two relationships, e.g. ["ENROLLED-IN·TAUGHT-BY"]. *)
val compose_name : Symtab.t -> Entity.t list -> Entity.t

(** [decompose symtab e] splits a composed relationship entity back into
    its chain; [None] if [e]'s name contains no separator or a component
    is unknown. *)
val decompose : Symtab.t -> Entity.t -> Entity.t list option

val is_composed : Symtab.t -> Entity.t -> bool

(** A discovered path: the composed relationship chain and the endpoints. *)
type path = { source : Entity.t; chain : Entity.t list; target : Entity.t }

(** Result of a two-endpoint search. [paths] come in the unidirectional
    DFS's emission order; [truncated] reports that the [max_paths] cap cut
    enumeration short (more chains may exist). The remaining fields are
    instrumentation from the bidirectional frontier phase: how many nodes
    joined the forward and backward frontiers, and how many level
    expansions each direction performed (both [0] when the search
    short-circuited or fell back to the plain DFS). *)
type search = {
  paths : path list;
  truncated : bool;
  meet_nodes : int;
  forward_expansions : int;
  backward_expansions : int;
}

(** [search db ~src ~tgt] — every composition chain of length 2..limit
    from [src] to [tgt] (requires [src <> tgt] per the paper; returns no
    paths otherwise), found by a degree-aware bidirectional
    meet-in-the-middle search: exact-distance frontiers grow from both
    endpoints (always the cheaper side first, by O(1) posting-list
    counts), join in the middle, and a target-pruned DFS reconstructs the
    chains — byte-identical, order included, to {!paths_dfs}. Paths are
    capped at [max_paths] (default 10_000) to keep pathological graphs
    interactive; the cap point matches the oracle's exactly. Frontier
    expansion fans out across [Database.pool db] when one is set, with
    identical results at any pool size. *)
val search :
  ?max_paths:int -> Database.t -> src:Entity.t -> tgt:Entity.t -> search

(** [paths db ~src ~tgt] is [(search db ~src ~tgt).paths]. *)
val paths : ?max_paths:int -> Database.t -> src:Entity.t -> tgt:Entity.t -> path list

(** The original unidirectional DFS, retained as the equivalence oracle
    for the bidirectional search (tests and experiment B17 compare the
    two byte-for-byte) and as the fallback for chain bounds beyond the
    distance-bitmask width. *)
val paths_dfs :
  ?max_paths:int -> Database.t -> src:Entity.t -> tgt:Entity.t -> path list

(** [candidates db pattern emit] — the composition facts matching a
    pattern, honoring [Database.limit db]:
    - relationship free, source and target bound: all paths between them;
    - relationship bound to a composed entity: walk the chain from/to the
      bound endpoint(s), or verify if both are bound.
    Patterns with a free relationship and a free endpoint are not
    enumerated (unbounded). *)
val candidates : ?max_paths:int -> Database.t -> Store.pattern -> (Fact.t -> unit) -> unit

(** [walk db ~chain ~src] — all targets reachable from [src] through the
    exact relationship chain. *)
val walk : Database.t -> chain:Entity.t list -> src:Entity.t -> Entity.t list

(** [count_compositions db] — the number of distinct composition facts the
    current limit admits over the whole database (used by experiment B3 to
    show the blow-up the paper predicts). *)
val count_compositions : ?max_paths:int -> Database.t -> int
