let lowercase = String.lowercase_ascii

let contains_ci haystack needle =
  let haystack = lowercase haystack and needle = lowercase needle in
  let nh = String.length haystack and nn = String.length needle in
  nn = 0
  ||
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  go 0

let substring ?(limit = 20) db needle =
  let symtab = Database.symtab db in
  let hits = ref [] in
  Symtab.iter_user
    (fun e -> if contains_ci (Symtab.name symtab e) needle then hits := e :: !hits)
    symtab;
  !hits
  |> List.sort (fun a b ->
         let la = String.length (Symtab.name symtab a) in
         let lb = String.length (Symtab.name symtab b) in
         if la <> lb then Int.compare la lb else Entity.compare a b)
  |> List.filteri (fun i _ -> i < limit)

(* Classic two-row Levenshtein. *)
let edit_distance a b =
  let la = String.length a and lb = String.length b in
  if la = 0 then lb
  else if lb = 0 then la
  else begin
    let previous = Array.init (lb + 1) Fun.id in
    let current = Array.make (lb + 1) 0 in
    for i = 1 to la do
      current.(0) <- i;
      for j = 1 to lb do
        let cost = if a.[i - 1] = b.[j - 1] then 0 else 1 in
        current.(j) <-
          min
            (min (current.(j - 1) + 1) (previous.(j) + 1))
            (previous.(j - 1) + cost)
      done;
      Array.blit current 0 previous 0 (lb + 1)
    done;
    previous.(lb)
  end

let fuzzy ?(limit = 10) ?(max_distance = 2) db name =
  let symtab = Database.symtab db in
  let target = lowercase name in
  let hits = ref [] in
  Symtab.iter_user
    (fun e ->
      let candidate = lowercase (Symtab.name symtab e) in
      if candidate <> target then begin
        (* Cheap length prefilter before the quadratic distance. *)
        let delta = abs (String.length candidate - String.length target) in
        if delta <= max_distance then begin
          let d = edit_distance candidate target in
          if d <= max_distance then hits := (d, e) :: !hits
        end
      end)
    symtab;
  List.sort compare !hits
  |> List.filteri (fun i _ -> i < limit)
  |> List.map snd

let suggestions ?(limit = 5) db name =
  fuzzy ~limit:(limit * 4) db name
  |> List.filter (Database.entity_in_closure db)
  |> List.filteri (fun i _ -> i < limit)
