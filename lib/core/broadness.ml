module Int_tbl = Hashtbl.Make (Int)

type t = {
  ups : Entity.t list Int_tbl.t;  (* strict generalizations *)
  downs : Entity.t list Int_tbl.t;  (* strict specializations *)
  up_sets : unit Int_tbl.t Int_tbl.t;  (* membership view of ups *)
}

let compute db =
  let closure = Database.closure db in
  let ups = Int_tbl.create 64 in
  let downs = Int_tbl.create 64 in
  let up_sets = Int_tbl.create 64 in
  let push tbl key v =
    Int_tbl.replace tbl key (v :: (Option.value ~default:[] (Int_tbl.find_opt tbl key)))
  in
  Closure.match_pattern closure (Store.pattern ~r:Entity.gen ()) (fun fact ->
      if not (Entity.equal fact.s fact.t) then begin
        push ups fact.s fact.t;
        push downs fact.t fact.s;
        let set =
          match Int_tbl.find_opt up_sets fact.s with
          | Some set -> set
          | None ->
              let set = Int_tbl.create 8 in
              Int_tbl.add up_sets fact.s set;
              set
        in
        Int_tbl.replace set fact.t ()
      end);
  { ups; downs; up_sets }

(* The hierarchy view is invariant until the fact set or rules change, so
   probing memoizes it per (database, generation). Weak keys let
   discarded databases (tests, workload sweeps create thousands) drop
   their entries; the mutex keeps the cache coherent when probes run
   concurrently with other databases' lookups. *)
module Db_cache = Ephemeron.K1.Make (struct
  type nonrec t = Database.t

  let equal = ( == )
  let hash = Database.uid
end)

type cache_cell = { generation : int; broadness : t }

let cache : cache_cell Db_cache.t = Db_cache.create 16
let cache_lock = Mutex.create ()

let of_db db =
  let generation = Database.generation db in
  Mutex.lock cache_lock;
  let hit =
    match Db_cache.find_opt cache db with
    | Some { generation = g; broadness } when g = generation -> Some broadness
    | _ -> None
  in
  Mutex.unlock cache_lock;
  match hit with
  | Some broadness -> broadness
  | None ->
      (* [compute] may fold pending inserts into the closure; the
         generation read above already reflects those inserts (it is
         bumped at insert time), so the entry stays valid. *)
      let broadness = compute db in
      Mutex.lock cache_lock;
      Db_cache.replace cache db { generation; broadness };
      Mutex.unlock cache_lock;
      broadness

let generalizations t e = Option.value ~default:[] (Int_tbl.find_opt t.ups e)
let specializations t e = Option.value ~default:[] (Int_tbl.find_opt t.downs e)

let in_ups t e e' =
  match Int_tbl.find_opt t.up_sets e with
  | Some set -> Int_tbl.mem set e'
  | None -> false

let is_generalization t ~of_ e' =
  Entity.equal e' Entity.top || in_ups t of_ e'

(* b is a cover of a iff a ⊏ b with no x strictly between: the paper's
   minimal generalization. Synonym pairs (mutual ⊑) cover each other. *)
let covers_up t a =
  let ups = generalizations t a in
  List.filter
    (fun b ->
      not
        (List.exists
           (fun x ->
             (not (Entity.equal x b))
             && (not (in_ups t x a)) (* synonyms of a are not strictly between *)
             && in_ups t x b
             && not (in_ups t b x) (* nor synonyms of b *))
           ups))
    ups

let covers_down t a =
  let downs = specializations t a in
  List.filter
    (fun b ->
      not
        (List.exists
           (fun x ->
             (not (Entity.equal x b))
             && (not (in_ups t a x))
             && in_ups t b x
             && not (in_ups t x b))
           downs))
    downs

let minimal_generalizations t e =
  if Entity.equal e Entity.top then []
  else match covers_up t e with [] -> [ Entity.top ] | covers -> covers

let minimal_specializations t e =
  if Entity.equal e Entity.bottom then []
  else match covers_down t e with [] -> [ Entity.bottom ] | covers -> covers

let entities t =
  let seen = Int_tbl.create 64 in
  Int_tbl.iter (fun e _ -> Int_tbl.replace seen e ()) t.ups;
  Int_tbl.iter (fun e _ -> Int_tbl.replace seen e ()) t.downs;
  Int_tbl.fold (fun e () acc -> e :: acc) seen []

let height t e =
  (* Longest strict chain upward; the hierarchy may contain synonym
     cycles, so visited entities are never re-entered. *)
  let rec go visited e =
    let nexts =
      List.filter (fun e' -> not (List.exists (Entity.equal e') visited)) (covers_up t e)
    in
    match nexts with
    | [] -> 0
    | _ -> 1 + List.fold_left (fun acc e' -> max acc (go (e :: visited) e')) 0 nexts
  in
  go [] e
