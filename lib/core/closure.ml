module D = Lsdb_datalog

type t = {
  mutable staged : D.Engine.result option;  (* stratum 1 (inversion) *)
  mutable result : D.Engine.result;  (* the full closure *)
  staged_rules : D.Rule.t list;
  rules : D.Rule.t list;
  mutable base_cardinal : int;
  mutable actives : (int, unit) Hashtbl.t option;
  (* Derived facts in derivation order, newest segment first: extensions
     push a segment instead of concatenating (which would be O(closure)
     per insert). *)
  mutable derived_segments : D.Triple.t list list;
  mutable derived_total : int;
}

exception Diverged = D.Engine.Diverged

let compute ?(max_facts = 2_000_000) ?pool ?(staged_rules = []) ~rules store =
  let staged, result =
    match staged_rules with
    | [] -> (None, D.Engine.closure ~max_facts ?pool rules (Store.to_seq store))
    | _ ->
        let stage = D.Engine.closure ~max_facts ?pool staged_rules (Store.to_seq store) in
        let result = D.Engine.closure ~max_facts ?pool rules (D.Index.to_seq stage.index) in
        (* The stage's derived facts are base facts to the main run;
           restore their provenance and derivation order. *)
        D.Triple.Tbl.iter
          (fun fact prov ->
            if not (D.Triple.Tbl.mem result.provenance fact) then
              D.Triple.Tbl.replace result.provenance fact prov)
          stage.provenance;
        ( Some stage,
          {
            result with
            derived = stage.derived @ result.derived;
            rounds = stage.rounds + result.rounds;
          } )
  in
  {
    staged;
    result;
    staged_rules;
    rules;
    base_cardinal = Store.cardinal store;
    actives = None;
    derived_segments = [ result.derived ];
    derived_total = List.length result.derived;
  }

let push_derived t added =
  (* The derived facts among the newly added triples are exactly those
     with a recorded derivation. *)
  let derived =
    List.filter (fun fact -> D.Triple.Tbl.mem t.result.provenance fact) added
  in
  if derived <> [] then begin
    t.derived_segments <- derived :: t.derived_segments;
    t.derived_total <- t.derived_total + List.length derived
  end

let extend ?(max_facts = 2_000_000) ?pool t facts =
  let triples = List.to_seq facts in
  (match t.staged with
  | None ->
      let result, added = D.Engine.extend ~max_facts ?pool t.rules t.result triples in
      t.result <- result;
      push_derived t added
  | Some stage ->
      let stage, stage_added =
        D.Engine.extend ~max_facts ?pool t.staged_rules stage triples
      in
      t.staged <- Some stage;
      (* Stage provenance for the newly inverted facts carries over. *)
      List.iter
        (fun fact ->
          match D.Triple.Tbl.find_opt stage.provenance fact with
          | Some prov when not (D.Triple.Tbl.mem t.result.provenance fact) ->
              D.Triple.Tbl.replace t.result.provenance fact prov
          | _ -> ())
        stage_added;
      let result, added =
        D.Engine.extend ~max_facts ?pool t.rules t.result (List.to_seq stage_added)
      in
      t.result <- result;
      push_derived t added);
  t.base_cardinal <- t.base_cardinal + List.length facts;
  t.actives <- None;
  t

let mem t fact = D.Index.mem t.result.index fact
let cardinal t = D.Index.cardinal t.result.index
let base_cardinal t = t.base_cardinal
let derived t = List.concat (List.rev t.derived_segments)
let derived_count t = t.derived_total
let is_derived t fact = D.Triple.Tbl.mem t.result.provenance fact

let provenance t fact =
  match D.Triple.Tbl.find_opt t.result.provenance fact with
  | Some { D.Engine.rule; premises } -> Some (rule, premises)
  | None -> None

let rounds t = t.result.rounds

let rule_counts t =
  let counts = Hashtbl.create 16 in
  D.Triple.Tbl.iter
    (fun _ { D.Engine.rule; _ } ->
      Hashtbl.replace counts rule
        (1 + Option.value ~default:0 (Hashtbl.find_opt counts rule)))
    t.result.provenance;
  Hashtbl.fold (fun rule n acc -> (rule, n) :: acc) counts []
  |> List.sort (fun (_, a) (_, b) -> Int.compare b a)
let iter f t = D.Index.iter f t.result.index
let to_seq t = D.Index.to_seq t.result.index

let match_pattern t (pat : Store.pattern) f =
  D.Index.candidates t.result.index ~s:pat.s ~r:pat.r ~tgt:pat.t f

let match_list t pat =
  let acc = ref [] in
  match_pattern t pat (fun fact -> acc := fact :: !acc);
  !acc

let count_matches t pat =
  let n = ref 0 in
  match_pattern t pat (fun _ -> incr n);
  !n

exception Found

let exists_match t pat =
  try
    match_pattern t pat (fun _ -> raise Found);
    false
  with Found -> true

(* The [actives] cache mutates under read; concurrent readers (parallel
   retraction waves) must force it from a single domain first — see
   [prepare_readers]. *)
let force_actives t =
  match t.actives with
  | Some table -> table
  | None ->
      let table = Hashtbl.create 256 in
      D.Index.iter
        (fun (triple : D.Triple.t) ->
          Hashtbl.replace table triple.s ();
          Hashtbl.replace table triple.r ();
          Hashtbl.replace table triple.t ())
        t.result.index;
      t.actives <- Some table;
      table

let prepare_readers t = ignore (force_actives t)
let active_entities t = Hashtbl.to_seq_keys (force_actives t)
