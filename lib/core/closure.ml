module D = Lsdb_datalog

exception Diverged = D.Engine.Diverged

(* The classic single-heap implementation: each stratum owns a full
   [Index.t] copy of its input facts. It doubles as the oracle the
   sharded path is gated against (B20, shard torture). *)
module Single = struct
  type t = {
    mutable staged : D.Engine.result option;  (* stratum 1 (inversion) *)
    mutable result : D.Engine.result;  (* the full closure *)
    mutable staged_rules : D.Rule.t list;
    mutable rules : D.Rule.t list;
    mutable base_cardinal : int;
    mutable actives : (int, unit) Hashtbl.t option;
    (* Derived facts in derivation order, newest segment first: extensions
       push a segment instead of concatenating (which would be O(closure)
       per insert). Deletion paths leave stale entries behind rather than
       rewriting every segment — readers filter against the provenance
       table, and the segments are compacted once stale entries outnumber
       live ones. [derived_listed] counts listed entries, stale included;
       the live count is the provenance table's length. *)
    mutable derived_segments : D.Triple.t list list;
    mutable derived_listed : int;
  }

  let compute ?(max_facts = 2_000_000) ?pool ?gov ?(staged_rules = []) ~rules
      store =
    let tripped () =
      match gov with
      | Some g -> Lsdb_exec.Governor.tripped g <> None
      | None -> false
    in
    let staged, result =
      match staged_rules with
      | [] ->
          (None, D.Engine.closure ~max_facts ?pool ?gov rules (Store.to_seq store))
      | _ ->
          let stage =
            D.Engine.closure ~max_facts ?pool ?gov staged_rules
              (Store.to_seq store)
          in
          if tripped () then
            (* The budget tripped inside the inversion stratum. Running the
               main stratum now would reload the whole stage index
               (ungoverned, by the base-facts invariant) only to trip at
               its first checkpoint — for a wall deadline that means twice
               the budget gone on index loads alone. Adopt the stage as the
               partial result instead: it holds every base fact plus
               whatever inversions landed, the cache is flagged partial and
               discarded at the next governor transition, and retraction on
               it stays sound because the delete/rederive walk follows
               recorded provenance, not the rule list. *)
            (None, stage)
          else
            let result =
              D.Engine.closure ~max_facts ?pool ?gov rules
                (D.Index.to_seq stage.index)
            in
            (* The stage's derived facts are base facts to the main run;
               restore their provenance and derivation order. *)
            D.Triple.Tbl.iter
              (fun fact prov ->
                if not (D.Triple.Tbl.mem result.provenance fact) then
                  D.Triple.Tbl.replace result.provenance fact prov)
              stage.provenance;
            ( Some stage,
              {
                result with
                derived = stage.derived @ result.derived;
                rounds = stage.rounds + result.rounds;
              } )
    in
    {
      staged;
      result;
      staged_rules;
      rules;
      base_cardinal = Store.cardinal store;
      actives = None;
      derived_segments = [ result.derived ];
      derived_listed = List.length result.derived;
    }

  let push_derived t added =
    (* The derived facts among the newly added triples are exactly those
       with a recorded derivation. *)
    let derived =
      List.filter (fun fact -> D.Triple.Tbl.mem t.result.provenance fact) added
    in
    if derived <> [] then begin
      t.derived_segments <- derived :: t.derived_segments;
      t.derived_listed <- t.derived_listed + List.length derived
    end

  (* Rebuild the derivation-order record from the provenance table,
     dropping stale entries. O(listed entries), so it must not run on
     every deletion — see [compact_derived]. *)
  let refilter_derived t =
    t.derived_segments <-
      List.filter_map
        (fun seg ->
          match
            List.filter (fun f -> D.Triple.Tbl.mem t.result.provenance f) seg
          with
          | [] -> None
          | seg -> Some seg)
        t.derived_segments;
    t.derived_listed <-
      List.fold_left (fun n seg -> n + List.length seg) 0 t.derived_segments

  (* Amortization: only rewrite the segments once stale entries dominate,
     so a retraction's bookkeeping cost is proportional to what it
     deleted, not to the closure's total derived count. *)
  let compact_derived t =
    if t.derived_listed > (2 * D.Triple.Tbl.length t.result.provenance) + 1024
    then refilter_derived t

  let extend ?(max_facts = 2_000_000) ?pool ?gov t facts =
    (* A fact asserted as base that the closure had already derived stops
       being derived: a from-scratch recompute records no derivation for
       base facts, and retraction must never delete a base fact just
       because its former premises went away. *)
    let demoted =
      List.filter (fun f -> D.Triple.Tbl.mem t.result.provenance f) facts
    in
    List.iter
      (fun f ->
        D.Engine.forget_provenance t.result f;
        match t.staged with
        | Some stage -> D.Engine.forget_provenance stage f
        | None -> ())
      demoted;
    let triples = List.to_seq facts in
    (match t.staged with
    | None ->
        let result, added =
          D.Engine.extend ~max_facts ?pool ?gov t.rules t.result triples
        in
        t.result <- result;
        push_derived t added
    | Some stage ->
        let stage, stage_added =
          D.Engine.extend ~max_facts ?pool ?gov t.staged_rules stage triples
        in
        t.staged <- Some stage;
        (* Stage provenance for the newly inverted facts carries over. *)
        List.iter
          (fun fact ->
            match D.Triple.Tbl.find_opt stage.provenance fact with
            | Some prov when not (D.Triple.Tbl.mem t.result.provenance fact) ->
                D.Engine.record_provenance t.result fact prov
            | _ -> ())
          stage_added;
        let result, added =
          D.Engine.extend ~max_facts ?pool ?gov t.rules t.result
            (List.to_seq stage_added)
        in
        t.result <- result;
        push_derived t added);
    if demoted <> [] then compact_derived t;
    t.base_cardinal <- t.base_cardinal + List.length facts;
    t.actives <- None;
    t

  (* Incremental deletion: delete/rederive in each stratum, stage first.
     Facts the stage stratum loses become the deletions of the main
     stratum; restored stage facts get their fresh stage derivations
     mirrored into the main provenance {e before} the main support walk,
     so the main cone is never inflated by a stale inversion edge. *)
  let retract ?(max_facts = 2_000_000) ?pool ?gov t facts =
    (match t.staged with
    | None ->
        let result, _ret =
          D.Engine.retract ~max_facts ?pool ?gov t.rules t.result facts
        in
        t.result <- result
    | Some stage ->
        let stage, sret =
          D.Engine.retract ~max_facts ?pool ?gov t.staged_rules stage facts
        in
        t.staged <- Some stage;
        List.iter
          (fun fact ->
            match D.Triple.Tbl.find_opt stage.provenance fact with
            | Some prov -> D.Engine.record_provenance t.result fact prov
            | None -> ())
          sret.restored;
        let result, mret =
          D.Engine.retract ~max_facts ?pool ?gov t.rules t.result sret.removed
        in
        t.result <- result;
        (* Reconcile: anything the stage stratum kept is a base fact of
           the main stratum and must remain in the closure — re-add it
           (with its stage derivation) and close over it if the main
           retraction dropped it through a stale support edge. *)
        let missing =
          List.filter
            (fun f ->
              D.Index.mem stage.index f && not (D.Index.mem t.result.index f))
            mret.removed
        in
        if missing <> [] then begin
          List.iter
            (fun fact ->
              match D.Triple.Tbl.find_opt stage.provenance fact with
              | Some prov when not (D.Triple.Tbl.mem t.result.provenance fact)
                ->
                  D.Engine.record_provenance t.result fact prov
              | _ -> ())
            missing;
          let result, added =
            D.Engine.extend ~max_facts ?pool ?gov t.rules t.result
              (List.to_seq missing)
          in
          t.result <- result;
          (* The retracted facts themselves are accounted for by the
             [promoted] segment below — don't record them twice. *)
          push_derived t
            (List.filter
               (fun f -> not (List.exists (D.Triple.equal f) facts))
               added)
        end);
    t.base_cardinal <- t.base_cardinal - List.length facts;
    t.actives <- None;
    compact_derived t;
    (* Retracted base facts that survived the rederivation are now
       derived facts: they just gained a recorded derivation, and were
       never in the derivation-order record while they were base. *)
    let promoted =
      List.filter (fun f -> D.Triple.Tbl.mem t.result.provenance f) facts
    in
    if promoted <> [] then begin
      t.derived_segments <- promoted :: t.derived_segments;
      t.derived_listed <- t.derived_listed + List.length promoted
    end;
    t

  let support_size t =
    D.Engine.support_size t.result
    + match t.staged with Some stage -> D.Engine.support_size stage | None -> 0

  (* Rule-set swap for the cheap rule-toggle paths: the caller has
     established (via {!rule_counts} / {!closed_under}) that the closure's
     content is already exactly what a recompute under the new rule set
     would produce; only future extensions/retractions need the new set. *)
  let set_rules t ~staged_rules ~rules =
    t.staged_rules <- staged_rules;
    t.rules <- rules

  let closed_under t rules = D.Engine.step rules t.result.index = []
  let mem t fact = D.Index.mem t.result.index fact
  let cardinal t = D.Index.cardinal t.result.index
  let base_cardinal t = t.base_cardinal

  let derived t =
    List.concat_map
      (List.filter (fun f -> D.Triple.Tbl.mem t.result.provenance f))
      (List.rev t.derived_segments)

  let derived_count t = D.Triple.Tbl.length t.result.provenance
  let is_derived t fact = D.Triple.Tbl.mem t.result.provenance fact

  let provenance t fact =
    match D.Triple.Tbl.find_opt t.result.provenance fact with
    | Some { D.Engine.rule; premises } -> Some (rule, premises)
    | None -> None

  let rounds t = t.result.rounds

  let rule_counts t =
    let counts = Hashtbl.create 16 in
    D.Triple.Tbl.iter
      (fun _ { D.Engine.rule; _ } ->
        Hashtbl.replace counts rule
          (1 + Option.value ~default:0 (Hashtbl.find_opt counts rule)))
      t.result.provenance;
    Hashtbl.fold (fun rule n acc -> (rule, n) :: acc) counts []
    |> List.sort (fun (_, a) (_, b) -> Int.compare b a)

  let iter f t = D.Index.iter f t.result.index
  let to_seq t = D.Index.to_seq t.result.index

  let match_pattern t (pat : Store.pattern) f =
    D.Index.candidates t.result.index ~s:pat.s ~r:pat.r ~tgt:pat.t f

  (* Exact O(1) selectivity probes over the closure index: frozen-tier
     ranges/postings net of tombstones plus live delta cells. These back
     conjunct ordering in Eval.cost and frontier selection in
     Composition. *)
  let count_pattern t (pat : Store.pattern) =
    D.Index.count t.result.index ~s:pat.s ~r:pat.r ~tgt:pat.t

  let out_degree t e = D.Index.count_s t.result.index e
  let in_degree t e = D.Index.count_t t.result.index e

  (* The [actives] cache mutates under read; concurrent readers (parallel
     retraction waves) must force it from a single domain first — see
     [prepare_readers]. *)
  let force_actives t =
    match t.actives with
    | Some table -> table
    | None ->
        let table = Hashtbl.create 256 in
        D.Index.iter
          (fun (triple : D.Triple.t) ->
            Hashtbl.replace table triple.s ();
            Hashtbl.replace table triple.r ();
            Hashtbl.replace table triple.t ())
          t.result.index;
        t.actives <- Some table;
        table

  let prepare_readers t = ignore (force_actives t)
  let active_entities t = Hashtbl.to_seq_keys (force_actives t)
  let entity_active t entity = Hashtbl.mem (force_actives t) entity
end

(* The dispatcher: a single-shard store gets the copying implementation
   above, a sharded store gets the read-through sharded strata
   ({!Sharded_closure}). Both sides maintain the same content contract,
   so every caller is oblivious to which one is live. *)
type t = Single of Single.t | Sharded of Sharded_closure.t

let compute ?max_facts ?pool ?gov ?staged_rules ?shards ~rules store =
  let shards =
    match shards with Some n -> max 1 n | None -> Store.shards store
  in
  if shards <= 1 then
    Single (Single.compute ?max_facts ?pool ?gov ?staged_rules ~rules store)
  else
    Sharded
      (Sharded_closure.compute ?max_facts ?pool ?gov ?staged_rules ~rules
         ~shards store)

let extend ?max_facts ?pool ?gov t facts =
  (match t with
  | Single s -> ignore (Single.extend ?max_facts ?pool ?gov s facts : Single.t)
  | Sharded s ->
      ignore (Sharded_closure.extend ?pool ?gov s facts : Sharded_closure.t));
  t

let retract ?max_facts ?pool ?gov t facts =
  (match t with
  | Single s -> ignore (Single.retract ?max_facts ?pool ?gov s facts : Single.t)
  | Sharded s ->
      ignore (Sharded_closure.retract ?pool ?gov s facts : Sharded_closure.t));
  t

let support_size = function
  | Single s -> Single.support_size s
  | Sharded s -> Sharded_closure.support_size s

let set_rules t ~staged_rules ~rules =
  match t with
  | Single s -> Single.set_rules s ~staged_rules ~rules
  | Sharded s -> Sharded_closure.set_rules s ~staged_rules ~rules

let closed_under t rules =
  match t with
  | Single s -> Single.closed_under s rules
  | Sharded s -> Sharded_closure.closed_under s rules

let mem t fact =
  match t with
  | Single s -> Single.mem s fact
  | Sharded s -> Sharded_closure.mem s fact

let cardinal = function
  | Single s -> Single.cardinal s
  | Sharded s -> Sharded_closure.cardinal s

let base_cardinal = function
  | Single s -> Single.base_cardinal s
  | Sharded s -> Sharded_closure.base_cardinal s

let derived = function
  | Single s -> Single.derived s
  | Sharded s -> Sharded_closure.derived s

let derived_count = function
  | Single s -> Single.derived_count s
  | Sharded s -> Sharded_closure.derived_count s

let is_derived t fact =
  match t with
  | Single s -> Single.is_derived s fact
  | Sharded s -> Sharded_closure.is_derived s fact

let provenance t fact =
  match t with
  | Single s -> Single.provenance s fact
  | Sharded s -> Sharded_closure.provenance s fact

let rounds = function
  | Single s -> Single.rounds s
  | Sharded s -> Sharded_closure.rounds s

let rule_counts = function
  | Single s -> Single.rule_counts s
  | Sharded s -> Sharded_closure.rule_counts s

let iter f = function
  | Single s -> Single.iter f s
  | Sharded s -> Sharded_closure.iter f s

let to_seq = function
  | Single s -> Single.to_seq s
  | Sharded s -> Sharded_closure.to_seq s

let match_pattern t pat f =
  match t with
  | Single s -> Single.match_pattern s pat f
  | Sharded s -> Sharded_closure.match_pattern s pat f

let match_list t pat =
  let acc = ref [] in
  match_pattern t pat (fun fact -> acc := fact :: !acc);
  !acc

let count_matches t pat =
  let n = ref 0 in
  match_pattern t pat (fun _ -> incr n);
  !n

let count_pattern t pat =
  match t with
  | Single s -> Single.count_pattern s pat
  | Sharded s -> Sharded_closure.count_pattern s pat

let out_degree t e =
  match t with
  | Single s -> Single.out_degree s e
  | Sharded s -> Sharded_closure.out_degree s e

let in_degree t e =
  match t with
  | Single s -> Single.in_degree s e
  | Sharded s -> Sharded_closure.in_degree s e

exception Found

let exists_match t pat =
  try
    match_pattern t pat (fun _ -> raise Found);
    false
  with Found -> true

let active_entities = function
  | Single s -> Single.active_entities s
  | Sharded s -> Sharded_closure.active_entities s

let entity_active t e =
  match t with
  | Single s -> Single.entity_active s e
  | Sharded s -> Sharded_closure.entity_active s e

let prepare_readers = function
  | Single s -> Single.prepare_readers s
  | Sharded s -> Sharded_closure.prepare_readers s

(** {1 Shard introspection} *)

let shards = function
  | Single _ -> 1
  | Sharded s -> Sharded_closure.shards s

let overlay_cardinals = function
  | Single s -> [| Single.derived_count s |]
  | Sharded s -> Sharded_closure.overlay_cardinals s

let exchanged = function
  | Single _ -> 0
  | Sharded s -> Sharded_closure.exchanged s

let tier_stats = function
  | Single s -> D.Index.tier_stats s.Single.result.D.Engine.index
  | Sharded s -> Sharded_closure.tier_stats s

let reshard_hint = function
  | Single _ -> None
  | Sharded s -> Sharded_closure.reshard_hint s

(* The sharded path has no single packed index to gallop over; callers
   fall back to a hash semi-join over [match_pattern]. *)
let intersect t h1 h2 emit =
  match t with
  | Single s ->
      D.Index.intersect s.Single.result.D.Engine.index h1 h2 emit;
      true
  | Sharded _ -> false
