(** The shard-scaling workload (experiment B20): a large flat graph of
    individual-relationship facts whose {e source} entities — the shard
    keys — are drawn from a Zipf distribution, plus a small two-level
    class taxonomy with a sprinkling of memberships.

    Derivation is deliberately light (only the memberships generalize):
    closure cost on this workload is dominated by how the engine reads
    the base facts, which is what separates the sharded read-through
    closure from the copying single-heap oracle. The skew knob controls
    partition balance: hash partitioning spreads distinct keys evenly
    but never splits one key's postings, so hot sources concentrate
    whole posting lists on single shards. *)

type params = {
  facts : int;  (** individual-relationship facts (pre-dedup) *)
  entities : int;
  relationships : int;  (** distinct individual relationship names *)
  classes : int;  (** taxonomy size (first quarter are roots) *)
  memberships : int;  (** entities given a class membership *)
  skew : float;  (** Zipf exponent over source-entity ranks; 0 = uniform *)
}

val default_params : params

type t = { params : params; facts : (string * string * string) list }

(** Deterministic for a fixed [Rng] seed and parameter set. *)
val generate : ?params:params -> Rng.t -> t

(** Number of generated fact lines (duplicates included — the database
    dedups on insert). *)
val fact_count : t -> int

(** A fresh database holding the generated facts, with [shards] internal
    heap shards ({!Lsdb.Database.create}). *)
val to_database : ?max_facts:int -> ?shards:int -> t -> Lsdb.Database.t
