type params = {
  facts : int;
  entities : int;
  relationships : int;
  classes : int;
  memberships : int;
  skew : float;
}

let default_params =
  {
    facts = 100_000;
    entities = 20_000;
    relationships = 16;
    classes = 40;
    memberships = 400;
    skew = 0.8;
  }

type t = { params : params; facts : (string * string * string) list }

let entity_name i = Printf.sprintf "E%d" i
let class_name i = Printf.sprintf "CAT%d" i
let rel_name i = Printf.sprintf "REL%d" i

let generate ?(params = default_params) rng =
  if params.entities < 1 || params.relationships < 1 || params.classes < 2 then
    invalid_arg "Shard_gen.generate: need entities, relationships and classes";
  let out = ref [] in
  let add s r t = out := (s, r, t) :: !out in
  (* A small two-level taxonomy: the first quarter of the classes are
     roots under TOP, the rest subclasses of a root. Membership facts
     then generalize through it — a couple of semi-naive rounds, a few
     percent derived. The heavy lifting of the workload is the flat
     individual-relationship graph below, which derives {e nothing}:
     closure cost is dominated by how the evaluation reads the base
     facts, which is exactly what B20 is measuring. *)
  let roots = max 1 (params.classes / 4) in
  for i = 0 to roots - 1 do
    add (class_name i) "⊑" "TOP"
  done;
  for i = roots to params.classes - 1 do
    add (class_name i) "⊑" (class_name (i mod roots))
  done;
  (* The shard keys: source entities drawn from a Zipf over the entity
     ranks. With skew 0 every entity is equally likely and the hash
     partition balances; at skew ≈ 1 a handful of hot sources own a
     large slice of the facts, and whole hot keys land on single shards
     (hash partitioning splits keys, never a key's postings) — the
     imbalance the B20 gauge and the partitioner tests exercise. *)
  let source_zipf = Zipf.create ~n:params.entities ~s:params.skew in
  let rel_names = Array.init params.relationships rel_name in
  for _ = 1 to params.facts do
    let s = entity_name (Zipf.sample source_zipf rng) in
    let t = entity_name (Rng.int rng params.entities) in
    add s rel_names.(Rng.int rng params.relationships) t
  done;
  let members = min params.memberships params.entities in
  for i = 0 to members - 1 do
    add (entity_name i) "∈" (class_name (roots + (i mod (params.classes - roots))))
  done;
  { params; facts = List.rev !out }

let fact_count t = List.length t.facts

let to_database ?(max_facts = 2_000_000) ?shards t =
  let db = Lsdb.Database.create ~max_facts ?shards () in
  List.iter
    (fun (s, r, tgt) -> ignore (Lsdb.Database.insert_names db s r tgt))
    t.facts;
  db
