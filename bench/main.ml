(* The benchmark harness: regenerates every experiment in DESIGN.md's
   index — the paper's worked examples (EX1–EX7) cell by cell, and the
   performance characterizations (B1–B8) of the design levers the text
   calls out. EXPERIMENTS.md records the expected shapes.

   Run everything:        dune exec bench/main.exe
   Run a subset:          dune exec bench/main.exe -- ex1 b3 b5
   Smaller/faster sweeps: dune exec bench/main.exe -- --quick *)

open Lsdb

let quick = ref false

(* ------------------------------------------------------------------ *)
(* Machine-readable results                                            *)

(* Every headline number printed in a pretty table is also recorded here
   and dumped as JSON (default BENCH_PR9.json, override with --json FILE)
   so regressions can be tracked without parsing tables. Writing merges
   into an existing file: rows measured this run replace same-id rows,
   rows from experiments not re-run are preserved, so partial runs
   (`bench b15`) refresh their slice of the file instead of erasing the
   rest. *)
let json_path = ref "BENCH_PR9.json"
let json_rows : (string * float * string) list ref = ref []
let record id value unit_ = json_rows := (id, value, unit_) :: !json_rows

(* Parse back the exact row format [write_json] emits (one object per
   line); anything else — brackets, hand-edits we can't read — is
   ignored rather than fatal, and will be dropped on rewrite. *)
let read_json_rows path =
  if not (Sys.file_exists path) then []
  else
    let ic = open_in path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let rows = ref [] in
        (try
           while true do
             let line = input_line ic in
             match
               Scanf.sscanf line " {\"id\": %S, \"value\": %f, \"unit\": %S"
                 (fun id value unit_ -> (id, value, unit_))
             with
             | row -> rows := row :: !rows
             | exception (Scanf.Scan_failure _ | Failure _ | End_of_file) -> ()
           done
         with End_of_file -> ());
        List.rev !rows)

let json_escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let write_json () =
  let fresh = List.rev !json_rows in
  let kept =
    List.filter
      (fun (id, _, _) -> not (List.exists (fun (id', _, _) -> id = id') fresh))
      (read_json_rows !json_path)
  in
  let rows = kept @ fresh in
  let oc = open_out !json_path in
  output_string oc "[\n";
  List.iteri
    (fun i (id, value, unit_) ->
      Printf.fprintf oc "  {\"id\": \"%s\", \"value\": %.6g, \"unit\": \"%s\"}%s\n"
        (json_escape id) value (json_escape unit_)
        (if i = List.length rows - 1 then "" else ","))
    rows;
  output_string oc "]\n";
  close_out oc;
  Printf.printf "\nwrote %d measurement(s) to %s\n" (List.length rows) !json_path

(* ------------------------------------------------------------------ *)
(* Small measurement helpers                                           *)

let time_ms f =
  let t0 = Unix.gettimeofday () in
  let result = f () in
  (result, (Unix.gettimeofday () -. t0) *. 1e3)

(* Median-of-runs wall-clock, for macro operations. *)
let measure_ms ?(runs = 5) f =
  let samples =
    List.init runs (fun _ ->
        let _, ms = time_ms f in
        ms)
  in
  let sorted = List.sort compare samples in
  List.nth sorted (runs / 2)

(* Bechamel micro-benchmarks: returns (name, ns/run) rows. *)
let bechamel_ns tests =
  let open Bechamel in
  let grouped =
    Test.make_grouped ~name:"µ"
      (List.map (fun (name, fn) -> Test.make ~name (Staged.stage fn)) tests)
  in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg =
    Benchmark.cfg ~limit:2000
      ~quota:(Time.second (if !quick then 0.2 else 0.5))
      ~kde:None ()
  in
  let raw = Benchmark.all cfg [ instance ] grouped in
  let ols = Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |] in
  let results = Analyze.all ols instance raw in
  List.filter_map
    (fun (name, _) ->
      let key = "µ/" ^ name in
      match Hashtbl.find_opt results key with
      | Some ols -> (
          match Analyze.OLS.estimates ols with
          | Some [ ns ] -> Some (name, ns)
          | _ -> None)
      | None -> None)
    tests

let section title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

let table headers rows = print_endline (Pretty.grid ~headers rows)

let ns_pretty ns =
  if ns >= 1e6 then Printf.sprintf "%.2f ms" (ns /. 1e6)
  else if ns >= 1e3 then Printf.sprintf "%.2f µs" (ns /. 1e3)
  else Printf.sprintf "%.0f ns" ns

let rng () = Lsdb_workload.Rng.create 0xC0FFEE

(* ------------------------------------------------------------------ *)
(* EX1–EX7: the paper's worked examples                                 *)

let ex1 () =
  section "EX1 — §4.1 navigation tables (JOHN / PC#9-WAM / LEOPOLD→MOZART)";
  let db = Paper_examples.music () in
  let e = Database.entity db in
  print_endline (Navigation.render_source_table db (e "JOHN"));
  print_endline (Navigation.render_source_table db (e "PC#9-WAM"));
  print_endline (Navigation.render_associations db ~src:(e "LEOPOLD") ~tgt:(e "MOZART"))

let ex2 () =
  section "EX2 — §5.1 minimally broader queries of (?z, LOVES, OPERA)";
  let db = Paper_examples.campus () in
  let broadness = Broadness.compute db in
  let query = Query_parser.parse db "(?z, LOVES, OPERA)" in
  List.iter
    (fun (br : Retraction.broader) ->
      Printf.printf "  %-26s  via %s\n"
        (Query.to_string (Database.symtab db) br.Retraction.query)
        (Retraction.describe db br.Retraction.step))
    (Retraction.retraction_set db broadness query)

let ex3 () =
  section "EX3 — §5.2 automatic retraction menu (the free things all students love)";
  let db = Paper_examples.campus () in
  let query = Query_parser.parse db "(STUDENT, LOVE, ?z) & (?z, COSTS, FREE)" in
  print_string (Probing.render_menu db query (Probing.probe db query))

let ex4 () =
  section "EX4 — §6.1 relation(EMPLOYEE, WORKS-FOR DEPARTMENT, EARNS SALARY)";
  let db = Paper_examples.payroll () in
  let view =
    Operators.relation db "EMPLOYEE"
      [ ("WORKS-FOR", "DEPARTMENT"); ("EARNS", "SALARY") ]
  in
  print_endline (View.render db view)

let ex5 () =
  section "EX5 — §3 standard inference examples, verified";
  let db = Paper_examples.organization () in
  let e = Database.entity db in
  let rows =
    List.map
      (fun ((s, r, t), label) ->
        let holds = Database.mem db (Fact.make (e s) (e r) (e t)) in
        [
          label;
          Printf.sprintf "(%s, %s, %s)" s r t;
          (if holds then "✓" else "✗ MISSING");
        ])
      [
        (("MANAGER", "WORKS-FOR", "DEPARTMENT"), "§3.1 gen-source");
        (("EMPLOYEE", "EARNS", "COMPENSATION"), "§3.1 gen-target");
        (("JOHN", "IS-PAID-BY", "SHIPPING"), "§3.1 gen-rel");
        (("JOHN", "WORKS-FOR", "DEPARTMENT"), "§3.2 mem-source");
        (("TOM", "WORKS-FOR", "DEPARTMENT"), "§3.2 mem-target");
        (("JOHNNY", "EARNS", "$25000"), "§3.3 synonym subst");
        (("WAGE", "syn", "PAY"), "§3.3 syn transitivity");
        (("CS100", "TAUGHT-BY", "HARRY"), "§3.4 inversion");
        (("TAUGHT-BY", "inv", "TEACHES"), "§3.4 inverse pairing");
        (("HATES", "contra", "LOVES"), "§3.5 ⊥ symmetry");
      ]
  in
  table [ "rule"; "inferred fact"; "holds" ] rows

let ex6 () =
  section "EX6 — §2.7/§3.6 standard queries";
  let library = Paper_examples.library () in
  let run db label text =
    let answer = Eval.eval db (Query_parser.parse db text) in
    Printf.printf "  %-30s -> {%s}\n" label
      (String.concat "; "
         (List.map (String.concat ",") (Eval.rows_named (Database.symtab db) answer)))
  in
  run library "self-citing authors"
    "exists x . (?x, in, BOOK) & (?y, in, PERSON) & (?x, CITES, ?x) & (?x, AUTHOR, ?y)";
  let org = Paper_examples.organization () in
  run org "employees earning > 20000"
    "(?z, in, EMPLOYEE) & exists y . (?z, EARNS, ?y) & (?y, gt, 20000)";
  let prop =
    Query_parser.parse org "(JOHN, WORKS-FOR, SHIPPING) & (TOM, WORKS-FOR, SHIPPING)"
  in
  Printf.printf "  %-30s -> %b\n" "proposition: both in shipping" (Eval.holds org prop);
  let query =
    Query_parser.parse library "(?x, in, QUARTERBACK) & (?x, GRADUATE-OF, USC)"
  in
  print_string (Probing.render_menu library query (Probing.probe library query))

let ex7 () =
  section "EX7 — §5.2 misspelling diagnosis";
  let db = Paper_examples.campus () in
  let query, unknowns = Query_parser.parse_with_unknowns db "(JOHM, LOVES, ?x)" in
  Printf.printf "parser-side unknown names: %s\n" (String.concat ", " unknowns);
  print_string (Probing.render_menu db query (Probing.probe db query))

(* ------------------------------------------------------------------ *)
(* B1 — closure materialization sweep                                   *)

let b1 () =
  section "B1 — closure cost vs. database size (org workload)";
  let sizes = if !quick then [ 250; 1000; 4000 ] else [ 250; 1000; 4000; 16000 ] in
  let rows =
    List.map
      (fun employees ->
        let org =
          Lsdb_workload.Org_gen.generate
            ~params:{ Lsdb_workload.Org_gen.default_params with employees }
            (rng ())
        in
        let db = Lsdb_workload.Org_gen.to_database org in
        let closure, ms = time_ms (fun () -> Database.closure db) in
        record (Printf.sprintf "b1/closure_ms/employees=%d" employees) ms "ms";
        [
          string_of_int employees;
          string_of_int (Closure.base_cardinal closure);
          string_of_int (Closure.cardinal closure);
          string_of_int (Closure.derived_count closure);
          string_of_int (Closure.rounds closure);
          Printf.sprintf "%.1f" ms;
          Printf.sprintf "%.2f"
            (1e3 *. ms /. float_of_int (max 1 (Closure.cardinal closure)));
        ])
      sizes
  in
  table
    [ "employees"; "base facts"; "closure"; "derived"; "rounds"; "ms"; "µs/fact" ]
    rows

(* B2 — indexed matching vs. linear scan vs. B+tree                      *)

let b2 () =
  section "B2 — template matching: hash indexes vs. scan vs. B+tree";
  let sizes = if !quick then [ 1000; 8000 ] else [ 1000; 8000; 32000 ] in
  let rows =
    List.map
      (fun employees ->
        let org =
          Lsdb_workload.Org_gen.generate
            ~params:{ Lsdb_workload.Org_gen.default_params with employees }
            (rng ())
        in
        let db = Lsdb_workload.Org_gen.to_database org in
        let store = Database.store db in
        let bptree = Lsdb_storage.Triple_index.of_database db in
        let e = Database.entity db in
        let pat = Store.pattern ~s:(e "EMP-0000") () in
        let consume = ref 0 in
        let results =
          bechamel_ns
            [
              ( "hash-index",
                fun () -> Store.match_pattern store pat (fun _ -> incr consume) );
              ("scan", fun () -> Store.match_scan store pat (fun _ -> incr consume));
              ( "bptree",
                fun () ->
                  Lsdb_storage.Triple_index.match_pattern bptree pat (fun _ ->
                      incr consume) );
            ]
        in
        let find name = List.assoc name results in
        List.iter
          (fun (name, ns) ->
            record
              (Printf.sprintf "b2/%s_ns/facts=%d" name (Store.cardinal store))
              ns "ns")
          results;
        [
          string_of_int (Store.cardinal store);
          ns_pretty (find "hash-index");
          ns_pretty (find "bptree");
          ns_pretty (find "scan");
          Printf.sprintf "%.0fx" (find "scan" /. find "hash-index");
        ])
      sizes
  in
  table [ "facts"; "hash index"; "B+tree"; "scan"; "index speedup" ] rows

(* B3 — composition blow-up vs. limit(n)                                 *)

let b3 () =
  section "B3 — composition facts and query time vs. limit(n) (§3.7/§6.1)";
  let uni =
    Lsdb_workload.University_gen.generate
      ~params:
        {
          Lsdb_workload.University_gen.students = (if !quick then 40 else 120);
          courses = 12;
          instructors = 6;
          enrollments_per_student = 3;
        }
      (rng ())
  in
  let db = Lsdb_workload.University_gen.to_database uni in
  let e = Database.entity db in
  let stu = uni.Lsdb_workload.University_gen.student_names.(0) in
  (* The instructor of one of the student's courses, so the 2-hop path
     ENROLLED-IN·TAUGHT-BY exists by construction. *)
  let prof =
    let answer =
      Eval.eval db
        (Query_parser.parse db
           (Printf.sprintf "exists c . (%s, ENROLLED-IN, ?c) & (?c, TAUGHT-BY, ?p)" stu))
    in
    match Eval.column answer with
    | p :: _ -> Database.entity_name db p
    | [] -> uni.Lsdb_workload.University_gen.instructor_names.(0)
  in
  let limits = if !quick then [ 1; 2; 3 ] else [ 1; 2; 3; 4 ] in
  let rows =
    List.map
      (fun n ->
        Database.set_limit db n;
        let count, count_ms =
          time_ms (fun () -> Composition.count_compositions ~max_paths:2_000_000 db)
        in
        let paths, query_ms =
          time_ms (fun () -> Composition.paths db ~src:(e stu) ~tgt:(e prof))
        in
        [
          string_of_int n;
          string_of_int count;
          Printf.sprintf "%.1f" count_ms;
          string_of_int (List.length paths);
          Printf.sprintf "%.2f" query_ms;
        ])
      limits
  in
  Database.set_limit db 1;
  table
    [ "limit(n)"; "composition facts"; "enum ms"; "paths stu→prof"; "pair-query ms" ]
    rows

(* B4 — retraction cost vs. taxonomy shape                               *)

let b4 () =
  section "B4 — retraction waves vs. taxonomy depth and fanout (§5.2)";
  let shapes =
    if !quick then [ (2, 2); (4, 2); (4, 4) ]
    else [ (2, 2); (4, 2); (6, 2); (4, 4); (3, 6) ]
  in
  let rows =
    List.map
      (fun (depth, fanout) ->
        let r = rng () in
        let taxonomy = Lsdb_workload.Taxonomy.generate ~prefix:"REL" ~depth ~fanout r in
        let db = Database.create () in
        Lsdb_workload.Taxonomy.insert db taxonomy;
        (* Data lives at the root relationship; the probe asks with a
           leaf relationship, so it must climb [depth] waves. *)
        ignore
          (Database.insert_names db "ITEM" taxonomy.Lsdb_workload.Taxonomy.root "GOAL");
        let leaf = Lsdb_workload.Taxonomy.random_leaf taxonomy r in
        let query =
          Query.atom
            (Template.make
               (Template.Ent (Database.entity db "ITEM"))
               (Template.Ent (Database.entity db leaf))
               (Template.Var "z"))
        in
        let outcome, ms =
          time_ms (fun () -> Probing.probe ~max_waves:(depth + 2) db query)
        in
        record (Printf.sprintf "b4/probe_ms/depth=%d,fanout=%d" depth fanout) ms "ms";
        let wave, attempted =
          match outcome with
          | Probing.Retracted { wave; attempted; _ } -> (wave, attempted)
          | Probing.Answered _ -> (0, 0)
          | Probing.Exhausted { attempted; waves; _ } -> (-waves, attempted)
        in
        [
          Printf.sprintf "%d/%d" depth fanout;
          string_of_int (Lsdb_workload.Taxonomy.node_count taxonomy);
          string_of_int wave;
          string_of_int attempted;
          Printf.sprintf "%.2f" ms;
        ])
      shapes
  in
  table
    [ "depth/fanout"; "hierarchy size"; "success wave"; "queries tried"; "ms" ]
    rows

(* B5 — the organization/retrieval trade-off                             *)

let b5 () =
  section "B5 — organization investment vs. retrieval cost (LSDB vs. relational)";
  let employees = if !quick then 2000 else 10000 in
  let org =
    Lsdb_workload.Org_gen.generate
      ~params:{ Lsdb_workload.Org_gen.default_params with employees }
      (rng ())
  in
  let (db : Database.t), lsdb_build_ms =
    time_ms (fun () -> Lsdb_workload.Org_gen.to_database org)
  in
  let catalog, rel_build_ms =
    time_ms (fun () -> Lsdb_workload.Org_gen.to_catalog org)
  in
  let _, closure_ms = time_ms (fun () -> Database.closure db) in
  (* Retrieval: the departments EMP-0042 works for — relational needs the
     schema; LSDB needs nothing but the entity. *)
  let emp = Lsdb_relational.Catalog.relation catalog "EMP" in
  let target = "EMP-0042" in
  let e = Database.entity db in
  let consume = ref 0 in
  let micro =
    bechamel_ns
      [
        ( "lsdb-template",
          fun () ->
            Match_layer.candidates ~opts:Match_layer.plain_opts db
              (Store.pattern ~s:(e target) ~r:(e "WORKS-FOR") ())
              (fun _ -> incr consume) );
        ( "lsdb-inferred",
          fun () ->
            Match_layer.candidates db
              (Store.pattern ~s:(e target) ~r:(e "WORKS-FOR") ())
              (fun _ -> incr consume) );
        ( "relational-lookup",
          fun () ->
            List.iter
              (fun tuple -> consume := !consume + Array.length tuple)
              (Lsdb_relational.Relation.lookup emp ~attr:"name" ~value:target) );
      ]
  in
  let find name = List.assoc name micro in
  record "b5/lsdb_build_ms" lsdb_build_ms "ms";
  record "b5/closure_ms" closure_ms "ms";
  List.iter (fun (name, ns) -> record (Printf.sprintf "b5/%s_ns" name) ns "ns") micro;
  table
    [ "metric"; "LSDB (heap of facts)"; "relational (schema-first)" ]
    [
      [
        "build ms";
        Printf.sprintf "%.1f" lsdb_build_ms;
        Printf.sprintf "%.1f" rel_build_ms;
      ];
      [ "schema design ops"; "0"; "2 schemas, 6 attributes" ];
      [ "one-time closure ms"; Printf.sprintf "%.1f" closure_ms; "n/a" ];
      [
        "point lookup (stored)";
        ns_pretty (find "lsdb-template");
        ns_pretty (find "relational-lookup");
      ];
      [
        "point lookup (w/ inference)";
        ns_pretty (find "lsdb-inferred");
        "not expressible";
      ];
    ]

(* B6 — storage strategies                                               *)

let b6 () =
  section "B6 — persistence: log append/replay vs. snapshot (§6.2)";
  let employees = if !quick then 1200 else 5000 in
  let org =
    Lsdb_workload.Org_gen.generate
      ~params:{ Lsdb_workload.Org_gen.default_params with employees }
      (rng ())
  in
  let dir = Filename.concat (Filename.get_temp_dir_name ()) "lsdb-bench-b6" in
  if Sys.file_exists dir then
    Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir)
  else Sys.mkdir dir 0o755;
  let p = Lsdb_storage.Persistent.open_dir dir in
  let _, append_ms =
    time_ms (fun () ->
        List.iter
          (fun (s, r, t) -> ignore (Lsdb_storage.Persistent.insert_names p s r t))
          org.Lsdb_workload.Org_gen.facts;
        Lsdb_storage.Persistent.sync p)
  in
  let n_facts = Database.base_cardinal (Lsdb_storage.Persistent.database p) in
  Lsdb_storage.Persistent.close p;
  let log_bytes = (Unix.stat (Filename.concat dir "log.lsdb")).Unix.st_size in
  let replay_ms =
    measure_ms ~runs:3 (fun () ->
        let p = Lsdb_storage.Persistent.open_dir dir in
        Lsdb_storage.Persistent.close p)
  in
  let p = Lsdb_storage.Persistent.open_dir dir in
  let _, compact_ms = time_ms (fun () -> Lsdb_storage.Persistent.compact p) in
  Lsdb_storage.Persistent.close p;
  let snap_bytes = (Unix.stat (Filename.concat dir "snapshot.lsdb")).Unix.st_size in
  let snapshot_open_ms =
    measure_ms ~runs:3 (fun () ->
        let p = Lsdb_storage.Persistent.open_dir dir in
        Lsdb_storage.Persistent.close p)
  in
  table
    [ "metric"; "value" ]
    [
      [ "facts persisted"; string_of_int n_facts ];
      [ "log append+sync ms"; Printf.sprintf "%.1f" append_ms ];
      [ "log size"; Printf.sprintf "%d KiB" (log_bytes / 1024) ];
      [ "open via log replay ms"; Printf.sprintf "%.1f" replay_ms ];
      [ "compaction ms"; Printf.sprintf "%.1f" compact_ms ];
      [ "snapshot size"; Printf.sprintf "%d KiB" (snap_bytes / 1024) ];
      [ "open via snapshot ms"; Printf.sprintf "%.1f" snapshot_open_ms ];
    ]

(* B7 — restructuring cost                                               *)

let b7 () =
  section "B7 — schema evolution: relational rewrites vs. heap insertions (§1)";
  let employees = if !quick then 2000 else 10000 in
  let org =
    Lsdb_workload.Org_gen.generate
      ~params:{ Lsdb_workload.Org_gen.default_params with employees }
      (rng ())
  in
  let catalog = Lsdb_workload.Org_gen.to_catalog org in
  let db = Lsdb_workload.Org_gen.to_database org in
  let rewritten, add_ms =
    time_ms (fun () ->
        Lsdb_relational.Catalog.add_attribute catalog ~relation:"EMP" ~attr:"badge"
          ~default:"UNISSUED")
  in
  let _, lsdb_add_ms =
    time_ms (fun () -> ignore (Database.insert_names db "EMPLOYEE" "HAS-A" "BADGE"))
  in
  let split_writes, split_ms =
    time_ms (fun () ->
        Lsdb_relational.Catalog.split_relation catalog ~relation:"EMP" ~key:"name"
          ~attrs:[ "salary" ] ~into:("EMP_PAY", "EMP_ORG"))
  in
  table
    [
      "evolution"; "relational tuples rewritten"; "relational ms"; "LSDB facts";
      "LSDB ms";
    ]
    [
      [
        "add attribute";
        string_of_int rewritten;
        Printf.sprintf "%.1f" add_ms;
        "1 (class-level fact)";
        Printf.sprintf "%.3f" lsdb_add_ms;
      ];
      [
        "vertical split";
        string_of_int split_writes;
        Printf.sprintf "%.1f" split_ms;
        "0 (no schema to split)";
        "0";
      ];
    ]

(* B8 — integrity checking cost                                          *)

let b8 () =
  section "B8 — integrity checking vs. database size (§2.5/§3.5)";
  let sizes = if !quick then [ 500; 2000 ] else [ 500; 2000; 8000 ] in
  let rows =
    List.map
      (fun employees ->
        let org =
          Lsdb_workload.Org_gen.generate
            ~params:{ Lsdb_workload.Org_gen.default_params with employees }
            (rng ())
        in
        let db = Lsdb_workload.Org_gen.to_database org in
        ignore (Database.insert_names db "LOVES" "contra" "HATES");
        let e name = Template.Ent (Database.entity db name) in
        Database.add_rule db
          (Rule.make ~name:"salaries-positive"
             ~body:[ Template.make (Template.Var "x") (e "EARNS") (Template.Var "s") ]
             ~heads:
               [ Template.make (Template.Var "s") (Template.Ent Entity.ge) (e "$0") ]
             ());
        (* Inject a handful of genuine contradictions so the check has
           something to find. *)
        for i = 0 to 4 do
          ignore
            (Database.insert_names db (Printf.sprintf "P%d" i) "LOVES" "OPERA");
          ignore (Database.insert_names db (Printf.sprintf "P%d" i) "HATES" "OPERA")
        done;
        ignore (Database.insert_names db "-1" "EARNS" "$-5");
        ignore (Database.closure db);
        let violations, ms = time_ms (fun () -> Integrity.violations db) in
        [
          string_of_int (Database.base_cardinal db);
          string_of_int (Closure.cardinal (Database.closure db));
          string_of_int (List.length violations);
          Printf.sprintf "%.1f" ms;
        ])
      sizes
  in
  table [ "base facts"; "closure"; "violations"; "check ms" ] rows

(* B9 — incremental closure maintenance (ablation)                       *)

let b9 () =
  section "B9 — closure maintenance: incremental extension vs. recompute";
  let employees = if !quick then 500 else 2000 in
  let inserts = if !quick then 50 else 200 in
  let org =
    Lsdb_workload.Org_gen.generate
      ~params:{ Lsdb_workload.Org_gen.default_params with employees }
      (rng ())
  in
  let make () =
    let db = Lsdb_workload.Org_gen.to_database org in
    ignore (Database.closure db);
    db
  in
  let fresh_facts db =
    List.init inserts (fun i ->
        Fact.of_names (Database.symtab db)
          (Printf.sprintf "NEW-%04d" i)
          "in" "EMPLOYEE")
  in
  (* Incremental: each insert is folded into the cached closure. *)
  let db = make () in
  let _, incr_ms =
    time_ms (fun () ->
        List.iter
          (fun fact ->
            ignore (Database.insert db fact);
            ignore (Database.closure db))
          (fresh_facts db))
  in
  let extensions = Database.closure_extensions db in
  (* Ablation: force a full recomputation after every insert. *)
  let db2 = make () in
  let _, full_ms =
    time_ms (fun () ->
        List.iter
          (fun fact ->
            ignore (Database.insert db2 fact);
            Database.invalidate db2;
            ignore (Database.closure db2))
          (fresh_facts db2))
  in
  record "b9/incremental_ms" incr_ms "ms";
  record "b9/recompute_ms" full_ms "ms";
  table
    [ "strategy"; "inserts"; "total ms"; "ms/insert"; "speedup" ]
    [
      [
        Printf.sprintf "incremental (%d extensions)" extensions;
        string_of_int inserts;
        Printf.sprintf "%.1f" incr_ms;
        Printf.sprintf "%.3f" (incr_ms /. float_of_int inserts);
        Printf.sprintf "%.0fx" (full_ms /. incr_ms);
      ];
      [
        "recompute each time";
        string_of_int inserts;
        Printf.sprintf "%.1f" full_ms;
        Printf.sprintf "%.3f" (full_ms /. float_of_int inserts);
        "1x";
      ];
    ]

(* B10 — dynamic conjunct reordering (ablation)                           *)

let b10 () =
  section "B10 — query evaluation: dynamic conjunct reordering vs. written order";
  let employees = if !quick then 500 else 2000 in
  let org =
    Lsdb_workload.Org_gen.generate
      ~params:{ Lsdb_workload.Org_gen.default_params with employees }
      (rng ())
  in
  let db = Lsdb_workload.Org_gen.to_database org in
  ignore (Database.closure db);
  (* Written in the worst order: the first conjunct is satisfied by the
     entire active domain (everything is ⊑ Δ), so written-order
     evaluation enumerates every entity before filtering. *)
  let bad_order =
    Query_parser.parse db "(?z, isa, top) & (?z, in, MANAGER) & (?z, EARNS, ?y)"
  in
  let reordered_ms = measure_ms ~runs:5 (fun () -> ignore (Eval.eval db bad_order)) in
  let written_ms =
    measure_ms ~runs:3 (fun () -> ignore (Eval.eval ~reorder:false db bad_order))
  in
  let check_same =
    let a = (Eval.eval db bad_order).Eval.rows in
    let b = (Eval.eval ~reorder:false db bad_order).Eval.rows in
    List.sort compare (List.map Array.to_list a)
    = List.sort compare (List.map Array.to_list b)
  in
  record "b10/reordered_ms" reordered_ms "ms";
  record "b10/written_order_ms" written_ms "ms";
  table
    [ "strategy"; "ms/query"; "same answers" ]
    [
      [ "most-bound-first (default)"; Printf.sprintf "%.2f" reordered_ms; "—" ];
      [
        "written order (comparator first)";
        Printf.sprintf "%.2f" written_ms;
        (if check_same then "✓" else "✗");
      ];
    ]

(* B11 — cold point queries: top-down proving vs. materialization        *)

let b11 () =
  section "B11 — cold point query: backward chaining vs. full materialization";
  (* Small sizes on purpose: the honest finding is that top-down proving
     explodes on hub-heavy heaps (the EMPLOYEE class touches most facts,
     so subgoals fan out to the whole database) — see EXPERIMENTS.md. *)
  let sizes = if !quick then [ 100 ] else [ 100; 250; 500 ] in
  let rows =
    List.map
      (fun employees ->
        let org =
          Lsdb_workload.Org_gen.generate
            ~params:{ Lsdb_workload.Org_gen.default_params with employees }
            (rng ())
        in
        let make () = Lsdb_workload.Org_gen.to_database org in
        (* The inferred fact "EMP-0042 earns compensation" (3 rule
           applications deep). *)
        let goal db =
          Fact.make
            (Database.entity db "EMP-0042")
            (Database.entity db "EARNS")
            (Database.entity db "COMPENSATION")
        in
        (* Cold materialization: compute the whole closure, then ask. *)
        let db1 = make () in
        let _, full_ms = time_ms (fun () -> Database.mem db1 (goal db1)) in
        (* Cold proving: no closure at all (capped goal budget). *)
        let db2 = make () in
        let outcome, prove_ms =
          time_ms (fun () ->
              try
                let proved, expansions =
                  Prover.prove_counted ~max_expansions:500_000 db2 (goal db2)
                in
                assert proved;
                Printf.sprintf "%d goals" expansions
              with Prover.Gave_up n -> Printf.sprintf "gave up at %d goals" n)
        in
        (* Warm materialization amortizes. *)
        let warm_ms = measure_ms ~runs:5 (fun () -> ignore (Database.mem db1 (goal db1))) in
        [
          string_of_int (Database.base_cardinal db1);
          Printf.sprintf "%.1f" full_ms;
          Printf.sprintf "%.1f (%s)" prove_ms outcome;
          Printf.sprintf "%.4f" warm_ms;
        ])
      sizes
  in
  table
    [ "base facts"; "cold closure+mem ms"; "cold prove ms"; "warm mem ms" ]
    rows

(* B12 — interactive browsing latency at scale                            *)

let b12 () =
  section "B12 — browsing stays interactive on an unorganized heap (§4)";
  let sizes = if !quick then [ 1000; 4000 ] else [ 1000; 4000; 16000 ] in
  let rows =
    List.map
      (fun books ->
        let r = rng () in
        let lib =
          Lsdb_workload.Citation_gen.generate
            ~params:{ Lsdb_workload.Citation_gen.default_params with books }
            r
        in
        let db = Lsdb_workload.Citation_gen.to_database lib in
        Database.set_limit db 2;
        ignore (Database.closure db);
        let walk = Lsdb_workload.Citation_gen.browsing_walk lib r ~hops:50 in
        let entities = List.map (Database.entity db) walk in
        (* Per-step navigation: one neighborhood per hop. *)
        let _, walk_ms =
          time_ms (fun () ->
              List.iter (fun e -> ignore (Navigation.neighborhood db e)) entities)
        in
        let per_hop = walk_ms /. float_of_int (List.length entities) in
        (* try(e) on a hub (rank-0 book: the most cited). *)
        let hub = Database.entity db lib.Lsdb_workload.Citation_gen.book_names.(0) in
        let try_ms = measure_ms ~runs:5 (fun () -> ignore (Navigation.try_entity db hub)) in
        (* Associations between two random books, with composition. *)
        let pick () =
          Database.entity db
            (Lsdb_workload.Rng.choose_array r lib.Lsdb_workload.Citation_gen.book_names)
        in
        let a = pick () and b = pick () in
        let assoc_ms =
          measure_ms ~runs:5 (fun () -> ignore (Navigation.associations db ~src:a ~tgt:b))
        in
        record (Printf.sprintf "b12/hop_ms/books=%d" books) per_hop "ms";
        record (Printf.sprintf "b12/try_hub_ms/books=%d" books) try_ms "ms";
        record (Printf.sprintf "b12/assoc_ms/books=%d" books) assoc_ms "ms";
        [
          string_of_int (Database.base_cardinal db);
          string_of_int (Closure.cardinal (Database.closure db));
          Printf.sprintf "%.3f" per_hop;
          Printf.sprintf "%.2f" try_ms;
          Printf.sprintf "%.2f" assoc_ms;
        ])
      sizes
  in
  table
    [ "base facts"; "closure"; "ms/neighborhood hop"; "try(hub) ms"; "assoc (limit 2) ms" ]
    rows

(* B13 — multicore scaling                                               *)

let b13 () =
  section "B13 — multicore scaling: parallel retraction waves and closure rounds";
  Printf.printf "host: %d core(s) recommended by the runtime\n"
    (Domain.recommended_domain_count ());
  (* Probe workload: a relationship taxonomy and a goal taxonomy, with
     enough facts under every (broadened) query that each candidate costs
     ~M index probes before failing. The probe explores every wave and
     ends Exhausted, so the whole search is failed conjunctive queries —
     the §5.2 worst case the parallel waves are for. *)
  let m = if !quick then 200 else 600 in
  let build () =
    let r = rng () in
    let rel_tax = Lsdb_workload.Taxonomy.generate ~prefix:"REL" ~depth:3 ~fanout:3 r in
    let goal_tax = Lsdb_workload.Taxonomy.generate ~prefix:"GOAL" ~depth:3 ~fanout:2 r in
    let db = Database.create () in
    Lsdb_workload.Taxonomy.insert db rel_tax;
    Lsdb_workload.Taxonomy.insert db goal_tax;
    let leaf_rel = List.hd rel_tax.Lsdb_workload.Taxonomy.leaves in
    let leaf_goal = List.hd goal_tax.Lsdb_workload.Taxonomy.leaves in
    (* M facts under the first conjunct and M under the second, joining on
       disjoint entities: both conjuncts enumerate, the join always
       fails. Generalization propagates both fact sets up the taxonomies,
       so every broadened query is just as expensive. *)
    for j = 0 to m - 1 do
      ignore
        (Database.insert_names db (Printf.sprintf "SRC-%04d" j) leaf_rel
           (Printf.sprintf "ITM-%04d" j));
      ignore
        (Database.insert_names db (Printf.sprintf "NDL-%04d" j) "NEEDLE" leaf_goal)
    done;
    let query =
      Query_parser.parse db
        (Printf.sprintf "(?x, %s, ?y) & (?y, NEEDLE, %s)" leaf_rel leaf_goal)
    in
    ignore (Database.closure db);
    (db, query)
  in
  let db, query = build () in
  let outcome_sig outcome =
    match outcome with
    | Probing.Answered a -> Printf.sprintf "answered/%d" (List.length a.Eval.rows)
    | Probing.Retracted { wave; successes; attempted; critical } ->
        Printf.sprintf "retracted/w%d/s%d/a%d/c%b" wave (List.length successes)
          attempted critical
    | Probing.Exhausted { waves; attempted; unknown_entities } ->
        Printf.sprintf "exhausted/w%d/a%d/u%d" waves attempted
          (List.length unknown_entities)
  in
  let baseline = Probing.probe ~max_waves:6 db query in
  let probe_rows = ref [] in
  let seq_ms = ref 0.0 in
  List.iter
    (fun domains ->
      let pool =
        if domains <= 1 then None
        else Some (Lsdb_exec.Pool.create ~domains)
      in
      let run () = Probing.probe ~max_waves:6 ?pool db query in
      let outcome = run () in
      let identical = outcome = baseline in
      let ms = measure_ms ~runs:3 run in
      Option.iter Lsdb_exec.Pool.shutdown pool;
      if domains <= 1 then seq_ms := ms;
      record (Printf.sprintf "b13/probe_ms/domains=%d" domains) ms "ms";
      probe_rows :=
        [
          string_of_int domains;
          outcome_sig outcome;
          (if identical then "✓" else "✗ DIFFERS");
          Printf.sprintf "%.1f" ms;
          Printf.sprintf "%.2fx" (!seq_ms /. ms);
        ]
        :: !probe_rows)
    [ 1; 2; 4 ];
  Printf.printf "\nprobe: %s (%d facts in closure)\n"
    (outcome_sig baseline)
    (Closure.cardinal (Database.closure db));
  table
    [ "domains"; "outcome"; "same as seq"; "ms/probe"; "speedup" ]
    (List.rev !probe_rows);
  (* Closure workload: full recomputation of the org-workload closure,
     rounds sharded across the pool. *)
  let employees = if !quick then 1000 else 4000 in
  let org =
    Lsdb_workload.Org_gen.generate
      ~params:{ Lsdb_workload.Org_gen.default_params with employees }
      (rng ())
  in
  let base = Lsdb_workload.Org_gen.to_database org in
  let base_closure = Database.closure base in
  let reference = (Closure.cardinal base_closure, Closure.derived_count base_closure) in
  let closure_rows = ref [] in
  let seq_closure_ms = ref 0.0 in
  List.iter
    (fun domains ->
      let pool =
        if domains <= 1 then None
        else Some (Lsdb_exec.Pool.create ~domains)
      in
      let db = Lsdb_workload.Org_gen.to_database org in
      Database.set_pool db pool;
      let run () =
        Database.invalidate db;
        Database.closure db
      in
      let closure = run () in
      let identical =
        (Closure.cardinal closure, Closure.derived_count closure) = reference
      in
      let ms = measure_ms ~runs:3 (fun () -> ignore (run ())) in
      Option.iter Lsdb_exec.Pool.shutdown pool;
      if domains <= 1 then seq_closure_ms := ms;
      record (Printf.sprintf "b13/closure_ms/domains=%d" domains) ms "ms";
      closure_rows :=
        [
          string_of_int domains;
          string_of_int (Closure.cardinal closure);
          (if identical then "✓" else "✗ DIFFERS");
          Printf.sprintf "%.1f" ms;
          Printf.sprintf "%.2fx" (!seq_closure_ms /. ms);
        ]
        :: !closure_rows)
    [ 1; 2; 4 ];
  Printf.printf "\nclosure recompute (%d employees):\n" employees;
  table
    [ "domains"; "closure"; "same as seq"; "ms/recompute"; "speedup" ]
    (List.rev !closure_rows)

(* B14 — recovery throughput                                             *)

let b14 () =
  section "B14 — recovery: log replay and salvage throughput";
  let n_ops = if !quick then 20_000 else 100_000 in
  (* An in-memory faulty VFS keeps the numbers about the scanner, not
     the disk, and lets us corrupt the log surgically. *)
  let vfs = Lsdb_storage.Vfs.faulty () in
  let dir = "/bench" in
  let p = Lsdb_storage.Persistent.open_dir ~vfs dir in
  for i = 0 to n_ops - 1 do
    ignore
      (Lsdb_storage.Persistent.insert_names p
         (Printf.sprintf "E%d" i)
         (Printf.sprintf "R%d" (i mod 16))
         (Printf.sprintf "T%d" (i mod 997)))
  done;
  Lsdb_storage.Persistent.sync p;
  Lsdb_storage.Persistent.close p;
  let log_path = "/bench/log.lsdb" in
  let log_bytes =
    String.length (Option.get (Lsdb_storage.Vfs.read_file vfs log_path))
  in
  let replay_ms =
    measure_ms ~runs:3 (fun () ->
        let p = Lsdb_storage.Persistent.open_dir ~vfs dir in
        Lsdb_storage.Persistent.close p)
  in
  (* Now wound the log — a bit flip every ~10k frames plus a torn tail —
     and measure a salvage open over the same volume. Salvage rewrites
     the log clean, so the damage is re-inflicted from a pristine copy
     for every run. *)
  let pristine = Option.get (Lsdb_storage.Vfs.read_file vfs log_path) in
  let wound () =
    let f = Lsdb_storage.Vfs.open_trunc vfs log_path in
    Lsdb_storage.Vfs.write f (String.sub pristine 0 (log_bytes - 7));
    Lsdb_storage.Vfs.fsync f;
    Lsdb_storage.Vfs.close f;
    let step = log_bytes / 10 in
    for i = 1 to 9 do
      Lsdb_storage.Vfs.corrupt_durable vfs log_path ~byte:(i * step)
    done;
    Lsdb_storage.Vfs.simulate_crash vfs
  in
  let salvage_ms =
    (* wound + salvage, wound again: salvage repairs the log in place,
       so the damage is re-inflicted outside the timed region. *)
    let samples =
      List.init 3 (fun _ ->
          wound ();
          let _, ms =
            time_ms (fun () ->
                let p =
                  Lsdb_storage.Persistent.open_dir ~vfs ~recovery:`Salvage dir
                in
                Lsdb_storage.Persistent.close p)
          in
          ms)
    in
    List.nth (List.sort compare samples) 1
  in
  record "b14/log_bytes" (float_of_int log_bytes) "bytes";
  record "b14/replay_ms" replay_ms "ms";
  record "b14/replay_kops_s" (float_of_int n_ops /. replay_ms) "kops/s";
  record "b14/salvage_ms" salvage_ms "ms";
  record "b14/salvage_kops_s" (float_of_int n_ops /. salvage_ms) "kops/s";
  table
    [ "metric"; "value" ]
    [
      [ "log"; Printf.sprintf "%d ops, %.1f MiB" n_ops (float_of_int log_bytes /. 1048576.) ];
      [ "strict replay"; Printf.sprintf "%.1f ms (%.0f kops/s)" replay_ms (float_of_int n_ops /. replay_ms) ];
      [ "salvage (9 flips + torn tail)"; Printf.sprintf "%.1f ms (%.0f kops/s)" salvage_ms (float_of_int n_ops /. salvage_ms) ];
    ]

(* B15 — incremental retraction (delete/rederive)                        *)

(* B15 doubles as the CI smoke check: any divergence between the
   incrementally maintained closure and a from-scratch recompute flips
   this counter, and the process exits nonzero after the JSON dump. *)
let equivalence_failures = ref 0

let b15 () =
  section "B15 — incremental retraction: delete/rederive vs. invalidate-and-recompute";
  (* Everything observable about a closure. Databases compared here are
     built from the same generated workload, so interned ids line up and
     raw facts are comparable directly. *)
  let signature db =
    let closure = Database.closure db in
    let dump =
      Closure.to_seq closure
      |> Seq.map (fun f -> (f, Closure.is_derived closure f))
      |> List.of_seq |> List.sort compare
    in
    ( dump,
      Closure.cardinal closure,
      Closure.derived_count closure,
      Closure.base_cardinal closure )
  in
  let check what ok =
    if not ok then begin
      incr equivalence_failures;
      Printf.printf "  ✗ EQUIVALENCE FAILURE: %s\n" what
    end
  in
  (* --- part 1: one retraction against a large closure ---------------- *)
  let employees = if !quick then 600 else 8000 in
  let org =
    Lsdb_workload.Org_gen.generate
      ~params:{ Lsdb_workload.Org_gen.default_params with employees }
      (rng ())
  in
  let db = Lsdb_workload.Org_gen.to_database org in
  let closure_size = Closure.cardinal (Database.closure db) in
  (* The victim: one employee's membership — the §3 rules hang a cone of
     derived works-for/earns/is-paid-by facts off it. *)
  let victim = Fact.of_names (Database.symtab db) "EMP-0042" "in" "EMPLOYEE" in
  (* Correctness first: the incrementally retracted closure must be
     byte-identical to a from-scratch recompute of the same state. *)
  ignore (Database.remove db victim);
  ignore (Database.closure db);
  let reference = Database.copy db in
  Database.invalidate reference;
  check "single-fact retraction vs. recompute" (signature db = signature reference);
  ignore (Database.insert db victim);
  ignore (Database.closure db);
  (* Timed: retract+closure, restored (untimed) between samples. *)
  let median samples = List.nth (List.sort compare samples) (List.length samples / 2) in
  let retract_and_restore prepare =
    let _, ms =
      time_ms (fun () ->
          ignore (Database.remove db victim);
          prepare ();
          ignore (Database.closure db))
    in
    ignore (Database.insert db victim);
    ignore (Database.closure db);
    ms
  in
  let incr_ms = median (List.init 5 (fun _ -> retract_and_restore (fun () -> ()))) in
  let full_ms =
    median (List.init 3 (fun _ -> retract_and_restore (fun () -> Database.invalidate db)))
  in
  record "b15/closure_facts" (float_of_int closure_size) "facts";
  record "b15/retract_incremental_ms" incr_ms "ms";
  record "b15/retract_recompute_ms" full_ms "ms";
  record "b15/retract_speedup" (full_ms /. incr_ms) "x";
  Printf.printf "single-fact retraction, %d-fact closure:\n" closure_size;
  table
    [ "strategy"; "ms/retraction"; "speedup" ]
    [
      [ "incremental (delete/rederive)"; Printf.sprintf "%.2f" incr_ms;
        Printf.sprintf "%.0fx" (full_ms /. incr_ms) ];
      [ "invalidate and recompute"; Printf.sprintf "%.1f" full_ms; "1x" ];
    ];
  (* --- part 2: mixed insert/retract browsing workload, 1–8 domains --- *)
  let employees = if !quick then 300 else 2000 in
  let steps = if !quick then 30 else 90 in
  let org =
    Lsdb_workload.Org_gen.generate
      ~params:{ Lsdb_workload.Org_gen.default_params with employees }
      (rng ())
  in
  (* A deterministic browsing session: two inserts of fresh employees,
     then a retraction of an original one, repeated. Both strategies and
     every pool size replay the identical op list. *)
  let ops =
    List.init steps (fun i ->
        if i mod 3 = 2 then `Remove (Printf.sprintf "EMP-%04d" i, "in", "EMPLOYEE")
        else `Insert (Printf.sprintf "NEW-%04d" i, "in", "EMPLOYEE"))
  in
  let apply ~incremental db =
    List.iter
      (fun op ->
        (match op with
        | `Insert (s, r, t) -> ignore (Database.insert_names db s r t)
        | `Remove (s, r, t) -> ignore (Database.remove_names db s r t));
        if not incremental then Database.invalidate db;
        ignore (Database.closure db))
      ops
  in
  let make () =
    let db = Lsdb_workload.Org_gen.to_database org in
    ignore (Database.closure db);
    db
  in
  let db_full = make () in
  let _, mixed_full_ms = time_ms (fun () -> apply ~incremental:false db_full) in
  let reference = signature db_full in
  record "b15/mixed_recompute_ms" mixed_full_ms "ms";
  let rows = ref [] in
  let seq_ms = ref 0.0 in
  List.iter
    (fun domains ->
      let pool = if domains <= 1 then None else Some (Lsdb_exec.Pool.create ~domains) in
      let db = make () in
      Database.set_pool db pool;
      let _, ms = time_ms (fun () -> apply ~incremental:true db) in
      let identical = signature db = reference in
      check
        (Printf.sprintf "mixed workload at %d domain(s) vs. recompute" domains)
        identical;
      Option.iter Lsdb_exec.Pool.shutdown pool;
      if domains <= 1 then seq_ms := ms;
      record (Printf.sprintf "b15/mixed_incremental_ms/domains=%d" domains) ms "ms";
      rows :=
        [
          string_of_int domains;
          Printf.sprintf "%.1f" ms;
          Printf.sprintf "%.3f" (ms /. float_of_int steps);
          Printf.sprintf "%.1fx" (mixed_full_ms /. ms);
          (if identical then "✓" else "✗ DIFFERS");
        ]
        :: !rows)
    [ 1; 2; 4; 8 ];
  Printf.printf "\nmixed workload: %d ops (2 inserts : 1 retraction), %d employees\n"
    steps employees;
  Printf.printf "recompute-per-op baseline: %.1f ms (%.1f ms/op)\n" mixed_full_ms
    (mixed_full_ms /. float_of_int steps);
  table
    [ "domains"; "total ms"; "ms/op"; "vs. recompute"; "same closure" ]
    (List.rev !rows);
  ignore !seq_ms

(* B16 — observability overhead                                          *)

(* Like the B15 equivalence check, B16 doubles as a CI gate: if the
   timed instrumentation costs more than 5% of wall-clock on either
   kernel, this counter flips and the process exits nonzero after the
   JSON dump. *)
let overhead_failures = ref 0
let overhead_limit_pct = 5.0

let b16 () =
  section "B16 — observability overhead: metrics off vs. on (5% budget)";
  let module Metrics = Lsdb_obs.Metrics in
  let module Trace = Lsdb_obs.Trace in
  let was_metrics = Metrics.enabled () in
  let was_trace = Trace.enabled () in
  Fun.protect
    ~finally:(fun () ->
      Metrics.set_enabled was_metrics;
      Trace.set_enabled was_trace)
  @@ fun () ->
  (* Tracing stays off throughout: its rings are a debugging aid with an
     explicit opt-in, while counters and the timed paths behind
     Metrics.set_enabled are what CI runs with --obs. *)
  Trace.set_enabled false;
  let runs = 7 in
  (* Kernel 1 — the B13 probe workload: every wave fails, so the whole
     cost is broadened conjunctive queries (spans + wave timers on the
     hot path). *)
  let m = if !quick then 150 else 400 in
  let probe_db, probe_query =
    let r = rng () in
    let rel_tax = Lsdb_workload.Taxonomy.generate ~prefix:"REL" ~depth:3 ~fanout:3 r in
    let goal_tax = Lsdb_workload.Taxonomy.generate ~prefix:"GOAL" ~depth:3 ~fanout:2 r in
    let db = Database.create () in
    Lsdb_workload.Taxonomy.insert db rel_tax;
    Lsdb_workload.Taxonomy.insert db goal_tax;
    let leaf_rel = List.hd rel_tax.Lsdb_workload.Taxonomy.leaves in
    let leaf_goal = List.hd goal_tax.Lsdb_workload.Taxonomy.leaves in
    for j = 0 to m - 1 do
      ignore
        (Database.insert_names db (Printf.sprintf "SRC-%04d" j) leaf_rel
           (Printf.sprintf "ITM-%04d" j));
      ignore
        (Database.insert_names db (Printf.sprintf "NDL-%04d" j) "NEEDLE" leaf_goal)
    done;
    let query =
      Query_parser.parse db
        (Printf.sprintf "(?x, %s, ?y) & (?y, NEEDLE, %s)" leaf_rel leaf_goal)
    in
    ignore (Database.closure db);
    (db, query)
  in
  let probe_kernel () = ignore (Probing.probe ~max_waves:6 probe_db probe_query) in
  (* Kernel 2 — the B15 single-fact retraction: delete/rederive a cone
     out of a large closure (retract timers + round spans). *)
  let employees = if !quick then 600 else 4000 in
  let org =
    Lsdb_workload.Org_gen.generate
      ~params:{ Lsdb_workload.Org_gen.default_params with employees }
      (rng ())
  in
  let retract_db = Lsdb_workload.Org_gen.to_database org in
  ignore (Database.closure retract_db);
  let victim =
    Fact.of_names (Database.symtab retract_db) "EMP-0042" "in" "EMPLOYEE"
  in
  let retract_kernel () =
    (* One retract+rederive cycle is tens of microseconds; batch enough
       of them that a sample dwarfs timer resolution. *)
    for _ = 1 to 50 do
      ignore (Database.remove retract_db victim);
      ignore (Database.closure retract_db);
      ignore (Database.insert retract_db victim);
      ignore (Database.closure retract_db)
    done
  in
  (* Samples alternate off/on pairwise: two back-to-back series would
     fold GC and cache drift into the comparison and swamp the few clock
     reads actually being measured. *)
  let measure_pair kernel =
    Metrics.set_enabled false;
    kernel ();
    Metrics.set_enabled true;
    kernel ();
    let samples =
      List.init runs (fun _ ->
          Metrics.set_enabled false;
          let _, off = time_ms kernel in
          Metrics.set_enabled true;
          let _, on = time_ms kernel in
          (off, on))
    in
    (* Best-of-runs, not median: the kernels are deterministic, so the
       minimum is the run least disturbed by GC and scheduling — exactly
       the floor where a real per-operation cost would still show up. *)
    let best xs = List.fold_left Float.min (List.hd xs) (List.tl xs) in
    (best (List.map fst samples), best (List.map snd samples))
  in
  let rows =
    List.map
      (fun (id, label, kernel) ->
        let off_ms, on_ms = measure_pair kernel in
        let pct = 100. *. ((on_ms -. off_ms) /. off_ms) in
        record (Printf.sprintf "b16/%s_ms_off" id) off_ms "ms";
        record (Printf.sprintf "b16/%s_ms_on" id) on_ms "ms";
        record (Printf.sprintf "b16/%s_overhead_pct" id) pct "%";
        let over = pct > overhead_limit_pct in
        if over then begin
          incr overhead_failures;
          Printf.printf "  ✗ OVERHEAD FAILURE: %s costs %.1f%% with metrics on\n"
            label pct
        end;
        [
          label;
          Printf.sprintf "%.2f" off_ms;
          Printf.sprintf "%.2f" on_ms;
          Printf.sprintf "%+.1f%%" pct;
          (if over then "✗ OVER" else "✓");
        ])
      [
        ("probe", "exhaustive probe (B13 kernel)", probe_kernel);
        ("retract", "retract+rederive (B15 kernel)", retract_kernel);
      ]
  in
  table
    [ "kernel"; "metrics off ms"; "metrics on ms"; "overhead";
      Printf.sprintf "budget %.0f%%" overhead_limit_pct ]
    rows

(* B17 — bidirectional composition path search                           *)

(* Like B15's incremental/recompute comparison, B17 is a CI gate: the
   bidirectional search must return byte-identical paths (same paths,
   same order, same truncation point) to the retained DFS oracle, at
   every limit and every pool size, or the process exits nonzero. *)
let b17 () =
  section "B17 — inference by composition: DFS vs bidirectional meet-in-the-middle";
  let check what ok =
    if not ok then begin
      incr equivalence_failures;
      Printf.printf "  ✗ EQUIVALENCE FAILURE: %s\n" what
    end
  in
  let limits = if !quick then [ 2; 3; 4; 5 ] else [ 2; 3; 4; 5; 6 ] in
  let runs = if !quick then 3 else 5 in
  let compare_at key db ~src ~tgt =
    List.map
      (fun limit ->
        Database.set_limit db limit;
        let dfs = Composition.paths_dfs db ~src ~tgt in
        let result = Composition.search db ~src ~tgt in
        let identical = dfs = result.Composition.paths in
        check (Printf.sprintf "%s limit=%d" key limit) identical;
        let dfs_ms =
          measure_ms ~runs (fun () -> ignore (Composition.paths_dfs db ~src ~tgt))
        in
        let bidir_ms =
          measure_ms ~runs (fun () -> ignore (Composition.search db ~src ~tgt))
        in
        record (Printf.sprintf "b17/%s/dfs_ms/limit=%d" key limit) dfs_ms "ms";
        record (Printf.sprintf "b17/%s/bidir_ms/limit=%d" key limit) bidir_ms "ms";
        record (Printf.sprintf "b17/%s/speedup/limit=%d" key limit)
          (dfs_ms /. bidir_ms) "x";
        [
          string_of_int limit;
          string_of_int (List.length dfs);
          Printf.sprintf "%.2f" dfs_ms;
          Printf.sprintf "%.2f" bidir_ms;
          Printf.sprintf "%.1fx" (dfs_ms /. bidir_ms);
          (if identical then "✓" else "✗ DIFFERS");
        ])
      limits
  in
  (* Citation workload — the paper's library: a sparse pair (an early
     book to the least-cited one) makes the DFS walk its whole forward
     cone while the bidirectional frontiers stay small. *)
  let books = if !quick then 200 else 800 in
  let lib =
    Lsdb_workload.Citation_gen.generate
      ~params:
        {
          Lsdb_workload.Citation_gen.books;
          authors = books / 4;
          subjects = 8;
          citations_per_book = 5;
          skew = 1.0;
        }
      (rng ())
  in
  let cit_db = Lsdb_workload.Citation_gen.to_database lib in
  let book i = Database.entity cit_db lib.Lsdb_workload.Citation_gen.book_names.(i) in
  Printf.printf "citation workload: %d books, %d facts in closure\n" books
    (Closure.cardinal (Database.closure cit_db));
  table
    [ "limit"; "paths"; "DFS ms"; "bidir ms"; "speedup"; "identical" ]
    (compare_at "citation" cit_db ~src:(book 5) ~tgt:(book (books - 1)));
  (* University workload — the §3.7 enrollment shape at browsing scale. *)
  let uni =
    Lsdb_workload.University_gen.generate
      ~params:
        {
          Lsdb_workload.University_gen.students = (if !quick then 60 else 200);
          courses = 20;
          instructors = 8;
          enrollments_per_student = 3;
        }
      (rng ())
  in
  let uni_db = Lsdb_workload.University_gen.to_database uni in
  let uent = Database.entity uni_db in
  Printf.printf "\nuniversity workload: %d facts in closure\n"
    (Closure.cardinal (Database.closure uni_db));
  table
    [ "limit"; "paths"; "DFS ms"; "bidir ms"; "speedup"; "identical" ]
    (compare_at "university" uni_db ~src:(uent "STU-0001") ~tgt:(uent "PROF-01"));
  (* Pool scaling: parallel frontier expansion at the widest limit. The
     citation frontiers are hundreds of nodes deep into the search, well
     past the fan-out threshold. *)
  let scale_limit = List.fold_left max 2 limits in
  Database.set_limit cit_db scale_limit;
  let src = book 5 and tgt = book (books - 1) in
  let baseline = (Composition.search cit_db ~src ~tgt).Composition.paths in
  let rows = ref [] in
  let seq_ms = ref 0.0 in
  List.iter
    (fun domains ->
      let pool = if domains <= 1 then None else Some (Lsdb_exec.Pool.create ~domains) in
      Database.set_pool cit_db pool;
      let paths = (Composition.search cit_db ~src ~tgt).Composition.paths in
      let identical = paths = baseline in
      check (Printf.sprintf "citation pool scaling at %d domain(s)" domains) identical;
      let ms =
        measure_ms ~runs (fun () -> ignore (Composition.search cit_db ~src ~tgt))
      in
      Database.set_pool cit_db None;
      Option.iter Lsdb_exec.Pool.shutdown pool;
      if domains <= 1 then seq_ms := ms;
      record (Printf.sprintf "b17/pool_ms/domains=%d" domains) ms "ms";
      rows :=
        [
          string_of_int domains;
          Printf.sprintf "%.2f" ms;
          Printf.sprintf "%.2fx" (!seq_ms /. ms);
          (if identical then "✓" else "✗ DIFFERS");
        ]
        :: !rows)
    [ 1; 2; 4 ];
  Printf.printf "\npool scaling, citation workload at limit %d:\n" scale_limit;
  table [ "domains"; "ms/search"; "speedup"; "same paths" ] (List.rev !rows)

(* B18 — demand-driven closure (magic sets)                              *)

let b18 () =
  section "B18 — demand-driven closure: cold-start magic sets vs eager saturation";
  let check what ok =
    if not ok then begin
      incr equivalence_failures;
      Printf.printf "  ✗ EQUIVALENCE FAILURE: %s\n" what
    end
  in
  let sorted_pattern db pat =
    let out = ref [] in
    Database.closure_match db pat (fun (f : Fact.t) -> out := (f.s, f.r, f.t) :: !out);
    List.sort compare !out
  in
  let cone_facts db =
    match Database.demand_stats db with
    | Some s ->
        s.Lsdb_datalog.Magic.stage_cone_facts + s.Lsdb_datalog.Magic.full_cone_facts
    | None -> 0
  in
  (* --- part 1: cold start on the org workload ------------------------ *)
  (* Time to first answer on a fresh heap: the browsing probe is one
     employee's full neighborhood. Eager mode pays the whole saturation
     on that first touch; demand mode derives just the employee's cone.
     8000 employees is B15's 175k-fact closure; 46000 crosses 1M. *)
  let scales =
    if !quick then [ ("600", 600) ] else [ ("175k", 8000); ("1m", 46000) ]
  in
  let rows = ref [] in
  List.iter
    (fun (label, employees) ->
      let org =
        Lsdb_workload.Org_gen.generate
          ~params:{ Lsdb_workload.Org_gen.default_params with employees }
          (rng ())
      in
      let probe db =
        let n = ref 0 in
        Database.closure_match db
          (Store.pattern ~s:(Database.entity db "EMP-0042") ())
          (fun _ -> incr n);
        !n
      in
      let db_eager = Lsdb_workload.Org_gen.to_database org in
      let eager_n, eager_ms = time_ms (fun () -> probe db_eager) in
      let closure = Database.closure db_eager in
      let full = Closure.cardinal closure in
      let derived = Closure.derived_count closure in
      let db_demand = Lsdb_workload.Org_gen.to_database org in
      Database.set_closure_mode db_demand Database.Demand;
      let demand_n, demand_ms = time_ms (fun () -> probe db_demand) in
      let cone = cone_facts db_demand in
      check
        (Printf.sprintf "cold probe count at %s" label)
        (eager_n = demand_n);
      (* Byte-identity on the benchmarked selective patterns (sorted
         answer sets; the two heaps intern identically). *)
      List.iter
        (fun (what, mk) ->
          check
            (Printf.sprintf "%s at %s" what label)
            (sorted_pattern db_eager (mk db_eager)
            = sorted_pattern db_demand (mk db_demand)))
        [
          ( "neighborhood answers",
            fun db -> Store.pattern ~s:(Database.entity db "EMP-0042") () );
          ( "point-query answers",
            fun db ->
              Store.pattern
                ~s:(Database.entity db "EMP-0042")
                ~r:(Database.entity db "EARNS")
                () );
          ( "second neighborhood",
            fun db -> Store.pattern ~s:(Database.entity db "EMP-0123") () );
        ];
      let speedup = eager_ms /. demand_ms in
      let pct = 100. *. float_of_int cone /. float_of_int (max 1 derived) in
      record (Printf.sprintf "b18/eager_cold_ms/scale=%s" label) eager_ms "ms";
      record (Printf.sprintf "b18/demand_cold_ms/scale=%s" label) demand_ms "ms";
      record (Printf.sprintf "b18/cold_speedup/scale=%s" label) speedup "x";
      record (Printf.sprintf "b18/closure_facts/scale=%s" label)
        (float_of_int full) "facts";
      record (Printf.sprintf "b18/cone_facts/scale=%s" label)
        (float_of_int cone) "facts";
      record (Printf.sprintf "b18/cone_pct/scale=%s" label) pct "%";
      rows :=
        [
          label;
          string_of_int full;
          Printf.sprintf "%.1f" eager_ms;
          Printf.sprintf "%.1f" demand_ms;
          Printf.sprintf "%.0fx" speedup;
          Printf.sprintf "%d (%.2f%% of derived)" cone pct;
        ]
        :: !rows)
    scales;
  Printf.printf "cold-start probe (one employee's neighborhood, fresh heap):\n";
  table
    [ "scale"; "closure"; "eager ms"; "demand ms"; "speedup"; "cone" ]
    (List.rev !rows);
  (* --- part 2: selective browsing queries, facts derived ------------- *)
  let uni =
    Lsdb_workload.University_gen.generate
      ~params:
        {
          Lsdb_workload.University_gen.students = (if !quick then 60 else 200);
          courses = 20;
          instructors = 8;
          enrollments_per_student = 3;
        }
      (rng ())
  in
  let uni_make () = Lsdb_workload.University_gen.to_database uni in
  let books = if !quick then 200 else 800 in
  let cit =
    Lsdb_workload.Citation_gen.generate
      ~params:
        {
          Lsdb_workload.Citation_gen.books;
          authors = books / 4;
          subjects = 8;
          citations_per_book = 5;
          skew = 1.0;
        }
      (rng ())
  in
  let cit_make () = Lsdb_workload.Citation_gen.to_database cit in
  let selective label make mk_pat =
    let db_eager = make () in
    let db_demand = make () in
    Database.set_closure_mode db_demand Database.Demand;
    check
      (Printf.sprintf "%s selective answers" label)
      (sorted_pattern db_eager (mk_pat db_eager)
      = sorted_pattern db_demand (mk_pat db_demand));
    let derived = Closure.derived_count (Database.closure db_eager) in
    let cone = cone_facts db_demand in
    let pct = 100. *. float_of_int cone /. float_of_int (max 1 derived) in
    record (Printf.sprintf "b18/%s/cone_facts" label) (float_of_int cone) "facts";
    record (Printf.sprintf "b18/%s/cone_pct" label) pct "%";
    check (Printf.sprintf "%s cone below 10%% (got %.2f%%)" label pct) (pct < 10.);
    [ label; string_of_int derived; string_of_int cone; Printf.sprintf "%.2f%%" pct ]
  in
  Printf.printf "\nselective browsing queries (facts derived, demand vs eager):\n";
  table
    [ "workload"; "full derived"; "cone facts"; "cone/derived" ]
    [
      selective "university" uni_make (fun db ->
          Store.pattern ~s:(Database.entity db "STU-0001") ());
      selective "citation" cit_make (fun db ->
          Store.pattern
            ~t:(Database.entity db cit.Lsdb_workload.Citation_gen.book_names.(5))
            ());
    ];
  (* --- part 3: byte-identity at every pool size ---------------------- *)
  (* Demand evaluation is single-threaded by design, so answers are
     pool-size independent by construction — this verifies it against
     the eager oracle anyway, full extent included. *)
  let patterns db =
    [
      Store.pattern ();
      Store.pattern ~s:(Database.entity db "STU-0001") ();
      Store.pattern ~r:(Database.entity db "ENROLL-STUDENT") ();
    ]
  in
  let eager_ref = uni_make () in
  let expected = List.map (sorted_pattern eager_ref) (patterns eager_ref) in
  List.iter
    (fun domains ->
      let db = uni_make () in
      Database.set_closure_mode db Database.Demand;
      let pool = if domains <= 1 then None else Some (Lsdb_exec.Pool.create ~domains) in
      Database.set_pool db pool;
      let got = List.map (sorted_pattern db) (patterns db) in
      Database.set_pool db None;
      Option.iter Lsdb_exec.Pool.shutdown pool;
      check
        (Printf.sprintf "demand ≡ eager at %d domain(s)" domains)
        (got = expected))
    [ 1; 2; 4; 8 ];
  Printf.printf "\nbyte-identity vs the eager oracle at pool sizes 1/2/4/8: checked\n"

(* B19 — query governor overhead + deadline'd partial results            *)

(* Two CI gates in one experiment. First, the overhead budget: a roomy
   governor (installed, checkpointing, never tripping) must cost less
   than 5% of wall-clock on the B13/B15/B17-shaped kernels — the same
   discipline B16 applies to the metrics layer, because a governor that
   taxes every untripped query is not "pay only when you trip". Second,
   graceful degradation: a wall deadline on the 175k-fact closure must
   return within 2x the deadline with a typed Partial whose facts are a
   sound subset of the ungoverned oracle's. *)
let b19 () =
  section "B19 — query governor: untripped overhead (5% budget), deadline'd closure";
  let module Governor = Lsdb_exec.Governor in
  let check what ok =
    if not ok then begin
      incr equivalence_failures;
      Printf.printf "  ✗ GOVERNOR FAILURE: %s\n" what
    end
  in
  let runs = 7 in
  (* --- part 1: untripped overhead on the three kernel shapes --------- *)
  (* Kernel 1 — the B13 probe workload: broadened conjunctive queries,
     so the governed path is Probing's wave loop plus Eval's join
     iteration. *)
  let m = if !quick then 150 else 400 in
  let probe_db, probe_query =
    let r = rng () in
    let rel_tax = Lsdb_workload.Taxonomy.generate ~prefix:"REL" ~depth:3 ~fanout:3 r in
    let goal_tax = Lsdb_workload.Taxonomy.generate ~prefix:"GOAL" ~depth:3 ~fanout:2 r in
    let db = Database.create () in
    Lsdb_workload.Taxonomy.insert db rel_tax;
    Lsdb_workload.Taxonomy.insert db goal_tax;
    let leaf_rel = List.hd rel_tax.Lsdb_workload.Taxonomy.leaves in
    let leaf_goal = List.hd goal_tax.Lsdb_workload.Taxonomy.leaves in
    for j = 0 to m - 1 do
      ignore
        (Database.insert_names db (Printf.sprintf "SRC-%04d" j) leaf_rel
           (Printf.sprintf "ITM-%04d" j));
      ignore
        (Database.insert_names db (Printf.sprintf "NDL-%04d" j) "NEEDLE" leaf_goal)
    done;
    let query =
      Query_parser.parse db
        (Printf.sprintf "(?x, %s, ?y) & (?y, NEEDLE, %s)" leaf_rel leaf_goal)
    in
    ignore (Database.closure db);
    (db, query)
  in
  let probe_kernel () = ignore (Probing.probe ~max_waves:6 probe_db probe_query) in
  (* Kernel 2 — the B15 single-fact retraction: delete/rederive a cone
     out of a large closure (Engine's fixpoint and retract loops). *)
  let employees = if !quick then 600 else 4000 in
  let org =
    Lsdb_workload.Org_gen.generate
      ~params:{ Lsdb_workload.Org_gen.default_params with employees }
      (rng ())
  in
  let retract_db = Lsdb_workload.Org_gen.to_database org in
  ignore (Database.closure retract_db);
  let victim =
    Fact.of_names (Database.symtab retract_db) "EMP-0042" "in" "EMPLOYEE"
  in
  let retract_kernel () =
    for _ = 1 to 50 do
      ignore (Database.remove retract_db victim);
      ignore (Database.closure retract_db);
      ignore (Database.insert retract_db victim);
      ignore (Database.closure retract_db)
    done
  in
  (* Kernel 3 — the B17 citation path search: Composition's frontier
     expansion and DFS fallback under the governed tick. *)
  let books = if !quick then 150 else 400 in
  let lib =
    Lsdb_workload.Citation_gen.generate
      ~params:
        {
          Lsdb_workload.Citation_gen.books;
          authors = books / 4;
          subjects = 8;
          citations_per_book = 5;
          skew = 1.0;
        }
      (rng ())
  in
  let compose_db = Lsdb_workload.Citation_gen.to_database lib in
  let book i =
    Database.entity compose_db lib.Lsdb_workload.Citation_gen.book_names.(i)
  in
  Database.set_limit compose_db 5;
  ignore (Database.closure compose_db);
  let src = book 5 and tgt = book (books - 1) in
  let compose_kernel () =
    (* One search is ~10µs — far below what a 5% gate can resolve — so
       batch enough of them that a sample dwarfs timer noise. *)
    for _ = 1 to 100 do
      ignore (Composition.search compose_db ~src ~tgt)
    done
  in
  (* Samples alternate ungoverned/governed pairwise (B16's discipline):
     back-to-back series would fold GC and cache drift into a comparison
     whose real subject is a few amortized checkpoint reads. *)
  let measure_pair db kernel =
    Database.set_governor db None;
    kernel ();
    Database.set_governor db (Some (Governor.create ()));
    kernel ();
    Database.set_governor db None;
    let samples =
      List.init runs (fun _ ->
          Database.set_governor db None;
          let _, off = time_ms kernel in
          let gov = Governor.create () in
          Database.set_governor db (Some gov);
          let _, on = time_ms kernel in
          Database.set_governor db None;
          check "roomy governor stayed untripped" (Governor.tripped gov = None);
          (off, on))
    in
    let best xs = List.fold_left Float.min (List.hd xs) (List.tl xs) in
    (best (List.map fst samples), best (List.map snd samples))
  in
  let rows =
    List.map
      (fun (id, label, db, kernel) ->
        let off_ms, on_ms = measure_pair db kernel in
        let pct = 100. *. ((on_ms -. off_ms) /. off_ms) in
        record (Printf.sprintf "b19/%s_ms_ungoverned" id) off_ms "ms";
        record (Printf.sprintf "b19/%s_ms_governed" id) on_ms "ms";
        record (Printf.sprintf "b19/%s_overhead_pct" id) pct "%";
        let over = pct > overhead_limit_pct in
        if over then begin
          incr overhead_failures;
          Printf.printf "  ✗ OVERHEAD FAILURE: %s costs %.1f%% governed\n" label pct
        end;
        [
          label;
          Printf.sprintf "%.2f" off_ms;
          Printf.sprintf "%.2f" on_ms;
          Printf.sprintf "%+.1f%%" pct;
          (if over then "✗ OVER" else "✓");
        ])
      [
        ("probe", "exhaustive probe (B13 kernel)", probe_db, probe_kernel);
        ("retract", "retract+rederive (B15 kernel)", retract_db, retract_kernel);
        ("compose", "citation path search (B17 kernel)", compose_db, compose_kernel);
      ]
  in
  table
    [ "kernel"; "ungoverned ms"; "governed ms"; "overhead";
      Printf.sprintf "budget %.0f%%" overhead_limit_pct ]
    rows;
  (* --- part 2: deadline'd large closure ------------------------------ *)
  (* B15's 175k-fact org closure (scaled down under --quick), saturated
     once ungoverned as the oracle, then recomputed on a fresh heap under
     a wall deadline. The contract: control returns within 2x the
     deadline (amortized checkpoints bound the overshoot), the trip is
     the typed Deadline reason, and whatever facts did get derived are a
     subset of the oracle's — sound partial answers, nothing invented. *)
  let employees = if !quick then 2000 else 8000 in
  let org =
    Lsdb_workload.Org_gen.generate
      ~params:{ Lsdb_workload.Org_gen.default_params with employees }
      (rng ())
  in
  let oracle_db = Lsdb_workload.Org_gen.to_database org in
  let oracle = Database.closure oracle_db in
  let full = Closure.cardinal oracle in
  (* The deadline must actually fire mid-saturation: start at a value
     comfortably below the full closure time and halve until it trips,
     so the gate is machine-speed independent. *)
  let rec deadlined deadline_ms =
    let db = Lsdb_workload.Org_gen.to_database org in
    let gov = Governor.create ~deadline_ms () in
    Database.set_governor db (Some gov);
    let closure, elapsed = time_ms (fun () -> Database.closure db) in
    match Governor.tripped gov with
    | None when deadline_ms > 0.05 -> deadlined (deadline_ms /. 2.)
    | tripped -> (db, closure, tripped, deadline_ms, elapsed)
  in
  let db, partial_closure, tripped, deadline_ms, elapsed =
    deadlined (if !quick then 20. else 50.)
  in
  let partial = Closure.cardinal partial_closure in
  check "deadline'd closure tripped" (tripped <> None);
  check
    (Printf.sprintf "trip reason is deadline (got %s)"
       (match tripped with Some r -> Governor.reason_string r | None -> "none"))
    (tripped = Some Governor.Deadline);
  check
    (Printf.sprintf "returned within 2x the deadline (%.1f ms vs %.1f ms)" elapsed
       (2. *. deadline_ms))
    (elapsed <= 2. *. deadline_ms);
  check "partial closure is flagged" (Database.closure_partial db);
  (* Subset on interned ids: both heaps load the same generated org, so
     they intern identically (the B18 argument). *)
  let sound = ref true in
  Closure.iter (fun f -> if not (Closure.mem oracle f) then sound := false)
    partial_closure;
  check "partial facts are a subset of the oracle's" !sound;
  record "b19/deadline_ms" deadline_ms "ms";
  record "b19/deadline_elapsed_ms" elapsed "ms";
  record "b19/deadline_overshoot" (elapsed /. deadline_ms) "x";
  record "b19/deadline_oracle_facts" (float_of_int full) "facts";
  record "b19/deadline_partial_facts" (float_of_int partial) "facts";
  Printf.printf
    "\ndeadline'd closure: %.1f ms budget, returned in %.1f ms (%.2fx), %d of %d \
     facts derived (%s)\n"
    deadline_ms elapsed
    (elapsed /. deadline_ms)
    partial full
    (match tripped with
    | Some r -> Governor.reason_string r
    | None -> "untripped");
  table
    [ "deadline ms"; "returned ms"; "overshoot"; "partial facts"; "oracle facts";
      "sound subset" ]
    [
      [
        Printf.sprintf "%.1f" deadline_ms;
        Printf.sprintf "%.1f" elapsed;
        Printf.sprintf "%.2fx" (elapsed /. deadline_ms);
        string_of_int partial;
        string_of_int full;
        (if !sound then "✓" else "✗ INVENTED FACTS");
      ];
    ];
  Database.set_governor db None

(* ------------------------------------------------------------------ *)
(* B20 — sharded fact heaps                                            *)

(* Closure, incremental maintenance and path search at 1–8 heap shards,
   gated on canonical identity with the single-heap oracle at every
   shard count and — in full mode, on the ≥1M-fact workload — on a ≥3x
   cold-closure speedup at 8 shards. The speedup on one core comes from
   reading through the store instead of copying it: the oracle loads the
   whole heap into two private stratum indexes before deriving anything,
   the sharded closure derives over the store's own postings. *)
let b20 () =
  section
    "B20 — sharded heaps: closure/retract/search scaling vs the single-heap \
     oracle";
  let check what ok =
    if not ok then begin
      incr equivalence_failures;
      Printf.printf "  ✗ SHARD FAILURE: %s\n" what
    end
  in
  let params =
    if !quick then
      {
        Lsdb_workload.Shard_gen.facts = 60_000;
        entities = 12_000;
        relationships = 16;
        classes = 40;
        memberships = 600;
        skew = 0.8;
      }
    else
      {
        Lsdb_workload.Shard_gen.facts = 1_000_000;
        entities = 200_000;
        relationships = 16;
        classes = 40;
        memberships = 4_000;
        skew = 0.8;
      }
  in
  let gen = Lsdb_workload.Shard_gen.generate ~params (rng ()) in
  Printf.printf "workload: %d generated facts, %d entities, zipf %.1f\n%!"
    (Lsdb_workload.Shard_gen.fact_count gen)
    params.Lsdb_workload.Shard_gen.entities
    params.Lsdb_workload.Shard_gen.skew;
  let build shards =
    Lsdb_workload.Shard_gen.to_database ~max_facts:8_000_000 ~shards gen
  in
  (* Every database loads the same generated fact list in the same order,
     so names intern to the same ids everywhere (the B18 argument) and
     closures compare directly on triples. *)
  let canon closure =
    let acc = ref [] in
    Closure.iter (fun f -> acc := f :: !acc) closure;
    let arr = Array.of_list !acc in
    Array.sort Fact.compare arr;
    arr
  in
  let canon_derived closure =
    List.sort Fact.compare (Closure.derived closure)
  in
  let arr_eq a b =
    Array.length a = Array.length b
    &&
    let ok = ref true in
    Array.iteri (fun i x -> if not (Fact.equal x b.(i)) then ok := false) a;
    !ok
  in
  let extend_batch db =
    for i = 0 to 999 do
      ignore
        (Database.insert_names db
           (Printf.sprintf "X%d" i)
           "REL0"
           (Printf.sprintf "E%d" (i * 7 mod params.Lsdb_workload.Shard_gen.entities)))
    done
  in
  let retract_names =
    let mems, rest =
      List.partition
        (fun (_, r, _) -> r = "∈")
        gen.Lsdb_workload.Shard_gen.facts
    in
    let take n l = List.filteri (fun i _ -> i < n) l in
    (* 100 membership facts (each with a generalization cone) and the
       first 100 other facts — which include taxonomy edges, whose
       removal collapses whole cones. *)
    take 100 mems @ take 100 rest
  in
  let retract_batch db =
    List.iter
      (fun (s, r, t) -> ignore (Database.remove_names db s r t))
      retract_names
  in
  (* One full lifecycle at a given shard count: cold closure, extension
     batch, retraction batch, composition search. Returns the timings
     and the canonical content after each state. *)
  let lifecycle shards =
    let db = build shards in
    let c0, closure_ms = time_ms (fun () -> Database.closure db) in
    let state0 = canon c0 in
    let derived0 = canon_derived c0 in
    let _, extend_ms =
      time_ms (fun () ->
          extend_batch db;
          ignore (Database.closure db))
    in
    let state1 = canon (Database.closure db) in
    let _, retract_ms =
      time_ms (fun () ->
          retract_batch db;
          ignore (Database.closure db))
    in
    let state2 = canon (Database.closure db) in
    Database.set_limit db 3;
    let src = Database.entity db "E500" and tgt = Database.entity db "E700" in
    let search_ms =
      measure_ms ~runs:3 (fun () -> ignore (Composition.search db ~src ~tgt))
    in
    let paths =
      List.sort compare (Composition.search db ~src ~tgt).Composition.paths
    in
    (db, closure_ms, extend_ms, retract_ms, search_ms, state0, derived0,
     state1, state2, paths)
  in
  let ( odb, oracle_closure_ms, oracle_extend_ms, oracle_retract_ms,
        oracle_search_ms, o0, od0, o1, o2, opaths ) =
    lifecycle 1
  in
  check "oracle really ran single-heap" (Closure.shards (Database.closure odb) = 1);
  let closure8_ms = ref oracle_closure_ms in
  let rows =
    [
      "1 (oracle)";
      Printf.sprintf "%.0f" oracle_closure_ms;
      Printf.sprintf "%.0f" oracle_extend_ms;
      Printf.sprintf "%.0f" oracle_retract_ms;
      Printf.sprintf "%.1f" oracle_search_ms;
      "1.00x"; "—"; "✓";
    ]
    :: List.map
         (fun shards ->
           let ( db, closure_ms, extend_ms, retract_ms, search_ms, s0, d0, s1,
                 s2, paths ) =
             lifecycle shards
           in
           let label what = Printf.sprintf "%s at %d shards" what shards in
           check (label "cold closure identical") (arr_eq o0 s0);
           check (label "derived set identical") (d0 = od0);
           check (label "post-extension closure identical") (arr_eq o1 s1);
           check (label "post-retraction closure identical") (arr_eq o2 s2);
           check (label "composition paths identical") (paths = opaths);
           check (label "dispatcher picked the sharded path")
             (Closure.shards (Database.closure db) = shards);
           let speedup = oracle_closure_ms /. closure_ms in
           if shards = 8 then closure8_ms := closure_ms;
           record (Printf.sprintf "b20/closure_ms_%dsh" shards) closure_ms "ms";
           record (Printf.sprintf "b20/extend_ms_%dsh" shards) extend_ms "ms";
           record (Printf.sprintf "b20/retract_ms_%dsh" shards) retract_ms "ms";
           record (Printf.sprintf "b20/search_ms_%dsh" shards) search_ms "ms";
           let exchanged = Closure.exchanged (Database.closure db) in
           record (Printf.sprintf "b20/exchanged_%dsh" shards)
             (float_of_int exchanged) "triples";
           (* Imbalance: largest shard over the even split. *)
           let cards = Closure.overlay_cardinals (Database.closure db) in
           let total = Array.fold_left ( + ) 0 cards in
           let biggest = Array.fold_left max 0 cards in
           let imbalance =
             if total = 0 then 1.
             else float_of_int (biggest * shards) /. float_of_int total
           in
           record (Printf.sprintf "b20/imbalance_%dsh" shards) imbalance "x";
           (* Demand mode reads through the same sharded store: spot-check
              the membership cone against the oracle's eager closure. *)
           if shards = 8 then begin
             Database.set_closure_mode db Database.Demand;
             let member = Database.entity db "∈" in
             let collect d =
               let acc = ref [] in
               Database.closure_match d (Store.pattern ~r:member ()) (fun f ->
                   acc := f :: !acc);
               List.sort Fact.compare !acc
             in
             check "demand-mode membership cone matches the eager oracle"
               (collect db = collect odb);
             Database.set_closure_mode db Database.Eager
           end;
           [
             string_of_int shards;
             Printf.sprintf "%.0f" closure_ms;
             Printf.sprintf "%.0f" extend_ms;
             Printf.sprintf "%.0f" retract_ms;
             Printf.sprintf "%.1f" search_ms;
             Printf.sprintf "%.2fx" speedup;
             Printf.sprintf "%d" exchanged;
             "✓";
           ])
         [ 2; 4; 8 ]
  in
  table
    [ "shards"; "closure ms"; "extend ms"; "retract ms"; "search ms";
      "speedup"; "exchanged"; "identical" ]
    rows;
  let speedup = oracle_closure_ms /. !closure8_ms in
  record "b20/closure_speedup_8sh" speedup "x";
  record "b20/base_facts" (float_of_int (Database.base_cardinal odb)) "facts";
  Printf.printf "\ncold closure at 8 shards: %.2fx the single-heap oracle\n"
    speedup;
  if not !quick then
    check
      (Printf.sprintf "≥3x closure speedup at 8 shards (got %.2fx)" speedup)
      (speedup >= 3.0);
  (* A tripped governor over the sharded path must still yield a sound
     subset: every fact it kept is in the oracle's closure, every base
     fact is still visible. *)
  let db = build 8 in
  let gov =
    Lsdb_exec.Governor.create
      ~max_facts:(if !quick then 50 else 500)
      ()
  in
  Database.set_governor db (Some gov);
  let partial = Database.closure db in
  check "tight fact budget tripped the sharded closure"
    (Lsdb_exec.Governor.tripped gov <> None);
  check "partial closure is flagged" (Database.closure_partial db);
  let member_of arr fact =
    (* [o0] is sorted: binary search. *)
    let lo = ref 0 and hi = ref (Array.length arr) in
    let found = ref false in
    while (not !found) && !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      let c = Fact.compare fact arr.(mid) in
      if c = 0 then found := true
      else if c < 0 then hi := mid
      else lo := mid + 1
    done;
    !found
  in
  let sound = ref true in
  Closure.iter (fun f -> if not (member_of o0 f) then sound := false) partial;
  check "tripped sharded closure is a subset of the oracle's" !sound;
  let base_visible = ref true in
  Store.iter
    (fun f -> if not (Closure.mem partial f) then base_visible := false)
    (Database.store db);
  check "every base fact visible after the trip" !base_visible;
  Database.set_governor db None

let b21 () =
  section
    "B21 — domain-per-shard lanes: closure/extend/retract over the shards × \
     domains grid (B13 × B20)";
  let check what ok =
    if not ok then begin
      incr equivalence_failures;
      Printf.printf "  ✗ LANE FAILURE: %s\n" what
    end
  in
  let params =
    if !quick then
      {
        Lsdb_workload.Shard_gen.facts = 60_000;
        entities = 12_000;
        relationships = 16;
        classes = 40;
        memberships = 600;
        skew = 0.8;
      }
    else
      {
        Lsdb_workload.Shard_gen.facts = 1_000_000;
        entities = 200_000;
        relationships = 16;
        classes = 40;
        memberships = 4_000;
        skew = 0.8;
      }
  in
  let gen = Lsdb_workload.Shard_gen.generate ~params (rng ()) in
  let cores = Domain.recommended_domain_count () in
  Printf.printf
    "workload: %d generated facts, %d entities, zipf %.1f; %d core(s)\n%!"
    (Lsdb_workload.Shard_gen.fact_count gen)
    params.Lsdb_workload.Shard_gen.entities
    params.Lsdb_workload.Shard_gen.skew cores;
  let build shards =
    Lsdb_workload.Shard_gen.to_database ~max_facts:8_000_000 ~shards gen
  in
  (* Same canonical-content currency as B20: every database loads the
     same generated fact list in the same order, so ids intern
     identically and closures compare directly on triples. *)
  let canon closure =
    let acc = ref [] in
    Closure.iter (fun f -> acc := f :: !acc) closure;
    let arr = Array.of_list !acc in
    Array.sort Fact.compare arr;
    arr
  in
  let arr_eq a b =
    Array.length a = Array.length b
    &&
    let ok = ref true in
    Array.iteri (fun i x -> if not (Fact.equal x b.(i)) then ok := false) a;
    !ok
  in
  let extend_batch db n =
    for i = 0 to n - 1 do
      ignore
        (Database.insert_names db
           (Printf.sprintf "X%d" i)
           "REL0"
           (Printf.sprintf "E%d" (i * 7 mod params.Lsdb_workload.Shard_gen.entities)))
    done
  in
  let retract_names =
    let mems, rest =
      List.partition
        (fun (_, r, _) -> r = "∈")
        gen.Lsdb_workload.Shard_gen.facts
    in
    let take n l = List.filteri (fun i _ -> i < n) l in
    take 100 mems @ take 100 rest
  in
  let retract_batch db =
    List.iter
      (fun (s, r, t) -> ignore (Database.remove_names db s r t))
      retract_names
  in
  let lane_rounds =
    Lsdb_obs.Metrics.counter
      ~help:"Closure rounds fanned out to persistent per-shard lanes"
      "lsdb_sharded_lane_rounds_total"
  in
  (* One lifecycle per grid cell; [domains = 1] attaches no pool, so the
     1-domain column is the PR 8 engine unchanged. *)
  let lifecycle ~shards ~domains =
    let db = build shards in
    let pool =
      if domains > 1 then Some (Lsdb_exec.Pool.create ~domains) else None
    in
    Fun.protect
      ~finally:(fun () ->
        Database.set_pool db None;
        Option.iter Lsdb_exec.Pool.shutdown pool)
    @@ fun () ->
    Database.set_pool db pool;
    let lanes_before = Lsdb_obs.Metrics.counter_value lane_rounds in
    let c0, closure_ms = time_ms (fun () -> Database.closure db) in
    let lanes_ran =
      Lsdb_obs.Metrics.counter_value lane_rounds > lanes_before
    in
    let state0 = canon c0 in
    let derived0 = Closure.derived c0 in
    let _, extend_ms =
      time_ms (fun () ->
          extend_batch db 1_000;
          ignore (Database.closure db))
    in
    let state1 = canon (Database.closure db) in
    let _, retract_ms =
      time_ms (fun () ->
          retract_batch db;
          ignore (Database.closure db))
    in
    let state2 = canon (Database.closure db) in
    (db, closure_ms, extend_ms, retract_ms, lanes_ran, state0, derived0,
     state1, state2)
  in
  let ( _odb, oracle_closure_ms, oracle_extend_ms, oracle_retract_ms, _,
        o0, _od0, o1, o2 ) =
    lifecycle ~shards:1 ~domains:1
  in
  record "b21/closure_ms_1sh_1d" oracle_closure_ms "ms";
  record "b21/extend_ms_1sh_1d" oracle_extend_ms "ms";
  record "b21/retract_ms_1sh_1d" oracle_retract_ms "ms";
  let sharded_1d = ref oracle_closure_ms in
  let sharded_8d = ref oracle_closure_ms in
  let rows = ref [] in
  List.iter
    (fun shards ->
      (* For a fixed shard count the whole row must be byte-identical:
         same fact set, same derivation order, at every domain count. *)
      let row_order = ref None in
      List.iter
        (fun domains ->
          if not (shards = 1 && domains = 1) then begin
            let ( db, closure_ms, extend_ms, retract_ms, lanes_ran, s0, d0,
                  s1, s2 ) =
              lifecycle ~shards ~domains
            in
            let cell = Printf.sprintf "%dsh × %dd" shards domains in
            let label what = Printf.sprintf "%s at %s" what cell in
            check (label "cold closure identical to the oracle") (arr_eq o0 s0);
            check (label "post-extension closure identical") (arr_eq o1 s1);
            check (label "post-retraction closure identical") (arr_eq o2 s2);
            check (label "dispatcher picked the right layout")
              (Closure.shards (Database.closure db) = shards);
            (match !row_order with
            | None -> row_order := Some d0
            | Some reference ->
                check
                  (label "derivation order byte-identical across domains")
                  (List.equal Fact.equal reference d0));
            if shards > 1 && domains > 1 then
              check (label "per-shard lanes actually engaged") lanes_ran;
            if shards = 8 && domains = 1 then sharded_1d := closure_ms;
            if shards = 8 && domains = 8 then sharded_8d := closure_ms;
            record
              (Printf.sprintf "b21/closure_ms_%dsh_%dd" shards domains)
              closure_ms "ms";
            record
              (Printf.sprintf "b21/extend_ms_%dsh_%dd" shards domains)
              extend_ms "ms";
            record
              (Printf.sprintf "b21/retract_ms_%dsh_%dd" shards domains)
              retract_ms "ms";
            rows :=
              [
                string_of_int shards;
                string_of_int domains;
                Printf.sprintf "%.0f" closure_ms;
                Printf.sprintf "%.0f" extend_ms;
                Printf.sprintf "%.0f" retract_ms;
                Printf.sprintf "%.2fx" (oracle_closure_ms /. closure_ms);
                (if lanes_ran then "✓" else "—");
                "✓";
              ]
              :: !rows
          end)
        [ 1; 2; 4; 8 ])
    [ 1; 2; 4; 8 ];
  table
    [ "shards"; "domains"; "closure ms"; "extend ms"; "retract ms";
      "vs 1sh/1d"; "lanes"; "identical" ]
    (List.rev !rows);
  let speedup = !sharded_1d /. !sharded_8d in
  record "b21/closure_speedup_8sh_8d_vs_1d" speedup "x";
  record "b21/cores" (float_of_int cores) "domains";
  Printf.printf
    "\ncold closure at 8 shards: 8 domains is %.2fx the 1-domain sharded \
     engine\n"
    speedup;
  (* The ≥2x gate needs 8 real cores to be physically meaningful; on
     smaller machines (and in --quick, where the workload is too small
     to amortize wake-ups) the grid is still fully identity-checked
     above, which is the part a laptop can falsify. *)
  if (not !quick) && cores >= 8 then
    check
      (Printf.sprintf "≥2x at 8 domains × 8 shards (got %.2fx)" speedup)
      (speedup >= 2.0)
  else
    Printf.printf
      "(speedup gate skipped: %s — identity checks above still gate)\n"
      (if !quick then "--quick workload" else
         Printf.sprintf "%d core(s) < 8" cores);
  (* Large-batch extension: the quadratic moved-fact filter regression
     scaled with batch size, so an 8k batch runs in quick mode too. *)
  let large = 8_000 in
  let large_db = build 8 in
  let pool = Lsdb_exec.Pool.create ~domains:(min 4 (max 2 cores)) in
  Fun.protect
    ~finally:(fun () ->
      Database.set_pool large_db None;
      Lsdb_exec.Pool.shutdown pool)
  @@ fun () ->
  Database.set_pool large_db (Some pool);
  ignore (Database.closure large_db);
  let _, extend_large_ms =
    time_ms (fun () ->
        extend_batch large_db large;
        ignore (Database.closure large_db))
  in
  record "b21/extend_large_ms" extend_large_ms "ms";
  Printf.printf "%d-fact extension batch at 8 shards: %.0f ms\n" large
    extend_large_ms;
  let oracle_large = build 1 in
  ignore (Database.closure oracle_large);
  extend_batch oracle_large large;
  check "large-batch extension content identical to the single heap"
    (arr_eq (canon (Database.closure oracle_large))
       (canon (Database.closure large_db)));
  (* Governor trip under lane concurrency: a budget that trips mid-grid
     must still leave a sound subset — every kept fact in the true
     closure, every base fact visible. *)
  let db = build 8 in
  let gov =
    Lsdb_exec.Governor.create ~max_facts:(if !quick then 50 else 500) ()
  in
  Database.set_pool db (Some pool);
  Database.set_governor db (Some gov);
  let partial = Database.closure db in
  Database.set_pool db None;
  check "tight fact budget tripped under lanes"
    (Lsdb_exec.Governor.tripped gov <> None);
  check "partial closure is flagged" (Database.closure_partial db);
  let member_of arr fact =
    let lo = ref 0 and hi = ref (Array.length arr) in
    let found = ref false in
    while (not !found) && !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      let c = Fact.compare fact arr.(mid) in
      if c = 0 then found := true
      else if c < 0 then hi := mid
      else lo := mid + 1
    done;
    !found
  in
  let sound = ref true in
  Closure.iter (fun f -> if not (member_of o0 f) then sound := false) partial;
  check "tripped lane closure is a subset of the oracle's" !sound;
  let base_visible = ref true in
  Store.iter
    (fun f -> if not (Closure.mem partial f) then base_visible := false)
    (Database.store db);
  check "every base fact visible after the trip" !base_visible;
  Database.set_governor db None

(* Bechamel micro-op reference table                                     *)

let b22 () =
  section
    "B22 — frozen posting segments: packed cold closure vs list cells, \
     identity across the policy/shard/domain/mode grid";
  let module Index = Lsdb_datalog.Index in
  let check what ok =
    if not ok then begin
      incr equivalence_failures;
      Printf.printf "  ✗ SEGMENT FAILURE: %s\n" what
    end
  in
  let params =
    if !quick then
      {
        Lsdb_workload.Shard_gen.facts = 60_000;
        entities = 12_000;
        relationships = 16;
        classes = 40;
        memberships = 600;
        skew = 0.8;
      }
    else
      {
        Lsdb_workload.Shard_gen.facts = 1_000_000;
        entities = 200_000;
        relationships = 16;
        classes = 40;
        memberships = 4_000;
        skew = 0.8;
      }
  in
  let gen = Lsdb_workload.Shard_gen.generate ~params (rng ()) in
  let build shards =
    Lsdb_workload.Shard_gen.to_database ~max_facts:8_000_000 ~shards gen
  in
  let with_policy policy f =
    let saved = Index.policy () in
    Index.set_policy policy;
    Fun.protect ~finally:(fun () -> Index.set_policy saved) f
  in
  (* Cold single-heap closure under a freeze policy: wall clock and
     minor-heap allocation across the closure computation only ([Never]
     is the pre-segment list-cell layout, the baseline this PR replaces;
     the database build stays outside the window). *)
  let cold policy =
    with_policy policy @@ fun () ->
    let db = build 1 in
    Gc.full_major ();
    let w0 = (Gc.quick_stat ()).Gc.minor_words in
    let c, ms = time_ms (fun () -> Database.closure db) in
    let minor_bytes = ((Gc.quick_stat ()).Gc.minor_words -. w0) *. 8.0 in
    (db, c, ms, minor_bytes)
  in
  (* The enumeration kernel: sweep every closure fact through the
     index's own iteration path. This is the loop the packed layout
     owns — a cache-linear spine scan versus a hashtable walk over a
     million boxed triples — and the one the ≥1.5x gate arms on. The
     sweep runs right after the cold closure, before any other full
     iteration touches the index. *)
  let enum_sweeps = 3 in
  let enum_ms closure =
    let n = ref 0 in
    let (), ms =
      time_ms (fun () ->
          for _ = 1 to enum_sweeps do
            Closure.iter (fun _ -> incr n) closure
          done)
    in
    ms /. float_of_int enum_sweeps
  in
  let canon closure =
    let acc = ref [] in
    Closure.iter (fun f -> acc := f :: !acc) closure;
    let arr = Array.of_list !acc in
    Array.sort Fact.compare arr;
    arr
  in
  let arr_eq a b =
    Array.length a = Array.length b
    &&
    let ok = ref true in
    Array.iteri (fun i x -> if not (Fact.equal x b.(i)) then ok := false) a;
    !ok
  in
  let list_ms, list_enum_ms, list_alloc, oracle =
    let _, c, ms, alloc = cold Index.Never in
    let ems = enum_ms c in
    (ms, ems, alloc, canon c)
  in
  let seg_db, seg_c, seg_ms, seg_alloc = cold Index.Watermark in
  let seg_enum_ms = enum_ms seg_c in
  check "segment closure content identical to the list-cell baseline"
    (arr_eq oracle (canon seg_c));
  let n_facts = float_of_int (Array.length oracle) in
  let speedup = list_ms /. seg_ms in
  let enum_speedup = list_enum_ms /. seg_enum_ms in
  let stats = Database.tier_stats seg_db in
  check "the frozen tier holds the bulk of the closure"
    (stats.Index.frozen_live > stats.Index.delta_live);
  record "b22/closure_ms_listcells" list_ms "ms";
  record "b22/closure_ms_segments" seg_ms "ms";
  record "b22/cold_closure_speedup" speedup "x";
  record "b22/enum_ms_listcells" list_enum_ms "ms";
  record "b22/enum_ms_segments" seg_enum_ms "ms";
  record "b22/cold_enum_speedup" enum_speedup "x";
  record "b22/minor_bytes_per_fact_listcells" (list_alloc /. n_facts) "bytes";
  record "b22/minor_bytes_per_fact_segments" (seg_alloc /. n_facts) "bytes";
  record "b22/frozen_live" (float_of_int stats.Index.frozen_live) "facts";
  record "b22/freezes" (float_of_int stats.Index.freezes) "segments";
  (* Refresh the GC gauges at record time so a scrape right after the
     bench reports the same allocation picture. *)
  Lsdb_obs.Metrics.sample_gc ();
  table
    [ "layout"; "closure ms"; "enum ms"; "minor B/fact"; "speedup" ]
    [
      [
        "list cells (Never)";
        Printf.sprintf "%.0f" list_ms;
        Printf.sprintf "%.1f" list_enum_ms;
        Printf.sprintf "%.0f" (list_alloc /. n_facts);
        "1.00x";
      ];
      [
        "segments (Watermark)";
        Printf.sprintf "%.0f" seg_ms;
        Printf.sprintf "%.1f" seg_enum_ms;
        Printf.sprintf "%.0f" (seg_alloc /. n_facts);
        Printf.sprintf "%.2fx enum %.2fx" speedup enum_speedup;
      ];
    ];
  if not !quick then begin
    (* The ≥1.5x gate arms on the enumeration kernel — the loop whose
       layout this PR changes. The full fixpoint is dominated by
       layout-independent engine work (unification, dedup, provenance;
       see EXPERIMENTS.md B22) and carries a no-regression backstop
       sized to this host's ±15% wall-clock variance. *)
    check
      (Printf.sprintf
         "≥1.5x cold closure enumeration speedup over list cells (got %.2fx)"
         enum_speedup)
      (enum_speedup >= 1.5);
    check
      (Printf.sprintf "cold closure no slower than list cells (got %.2fx)"
         speedup)
      (speedup >= 0.9);
    check "segments allocate fewer minor-heap bytes per fact"
      (seg_alloc < list_alloc)
  end;
  (* Identity grid: every (shards, domains, mode) cell enumerates the
     closure through its own access path — [closure_match] with the full
     wildcard, which in demand mode issues one all-free goal — and must
     be byte-identical (sorted) to the list-cell baseline above. *)
  let domains_axis = if !quick then [ 1; 2 ] else [ 1; 2; 4; 8 ] in
  let grid_oracle = Array.to_list oracle in
  let cells = ref 0 in
  List.iter
    (fun shards ->
      List.iter
        (fun domains ->
          List.iter
            (fun mode ->
              let label =
                Printf.sprintf "%dsh-%dd-%s" shards domains
                  (match mode with
                  | Database.Eager -> "eager"
                  | Database.Demand -> "demand")
              in
              let db = build shards in
              Database.set_closure_mode db mode;
              let pool =
                if domains > 1 then Some (Lsdb_exec.Pool.create ~domains)
                else None
              in
              Database.set_pool db pool;
              Fun.protect
                ~finally:(fun () ->
                  Database.set_pool db None;
                  Option.iter Lsdb_exec.Pool.shutdown pool)
                (fun () ->
                  let acc = ref [] in
                  Database.closure_match db (Store.pattern ()) (fun f ->
                      acc := f :: !acc);
                  let got = List.sort Fact.compare !acc in
                  incr cells;
                  check
                    (Printf.sprintf "enumeration identical at %s" label)
                    (got = grid_oracle)))
            [ Database.Eager; Database.Demand ])
        domains_axis)
    [ 1; 2; 4; 8 ];
  Printf.printf
    "\nidentity grid: %d cell(s) byte-identical; cold closure %.2fx, \
     enumeration %.2fx over list cells\n"
    !cells speedup enum_speedup

(* ------------------------------------------------------------------ *)

let micro () =
  section "MICRO — core operation costs (Bechamel, ns/op)";
  let db = Paper_examples.organization () in
  ignore (Database.closure db);
  let e = Database.entity db in
  let store = Database.store db in
  let consume = ref 0 in
  let query =
    Query_parser.parse db
      "(?z, in, EMPLOYEE) & exists y . (?z, EARNS, ?y) & (?y, gt, 20000)"
  in
  let campus = Paper_examples.campus () in
  let campus_broadness = Broadness.compute campus in
  let campus_query =
    Query_parser.parse campus "(STUDENT, LOVE, ?z) & (?z, COSTS, FREE)"
  in
  let results =
    bechamel_ns
      [
        ( "store.add+remove",
          fun () ->
            let f = Fact.make 9999 9998 9997 in
            ignore (Store.add store f);
            ignore (Store.remove store f) );
        ( "store.match (s,r,?)",
          fun () ->
            Store.match_pattern store
              (Store.pattern ~s:(e "JOHN") ~r:(e "EARNS") ())
              (fun _ -> incr consume) );
        ( "closure.mem (inferred)",
          fun () ->
            consume :=
              !consume
              +
              if Database.mem db (Fact.make (e "JOHN") (e "EARNS") (e "SALARY")) then 1
              else 0 );
        ( "eval (2-atom + comparator)",
          fun () -> consume := !consume + List.length (Eval.eval db query).Eval.rows );
        ( "neighborhood (JOHN)",
          fun () ->
            consume :=
              !consume
              + List.length (Navigation.neighborhood db (e "JOHN")).Navigation.as_source
        );
        ( "retraction_set (§5.2 query)",
          fun () ->
            consume :=
              !consume
              + List.length
                  (Retraction.retraction_set campus campus_broadness campus_query) );
      ]
  in
  List.iter (fun (n, ns) -> record (Printf.sprintf "micro/%s_ns" n) ns "ns") results;
  table [ "operation"; "cost" ] (List.map (fun (n, ns) -> [ n; ns_pretty ns ]) results)

(* ------------------------------------------------------------------ *)

let experiments =
  [
    ("ex1", ex1); ("ex2", ex2); ("ex3", ex3); ("ex4", ex4); ("ex5", ex5);
    ("ex6", ex6); ("ex7", ex7);
    ("b1", b1); ("b2", b2); ("b3", b3); ("b4", b4); ("b5", b5); ("b6", b6);
    ("b7", b7); ("b8", b8); ("b9", b9); ("b10", b10); ("b11", b11); ("b12", b12);
    ("b13", b13); ("b14", b14); ("b15", b15); ("b16", b16); ("b17", b17);
    ("b18", b18); ("b19", b19); ("b20", b20); ("b21", b21); ("b22", b22);
    ("micro", micro);
  ]

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let rec parse acc = function
    | [] -> List.rev acc
    | "--quick" :: rest ->
        quick := true;
        parse acc rest
    | "--obs" :: rest ->
        (* Run every experiment with the timed metrics instrumentation
           enabled — the state CI gates with B16's overhead budget. *)
        Lsdb_obs.Metrics.set_enabled true;
        parse acc rest
    | "--json" :: path :: rest ->
        json_path := path;
        parse acc rest
    | "--json" :: [] ->
        prerr_endline "--json requires a file argument";
        exit 2
    | a :: rest -> parse (a :: acc) rest
  in
  let args = parse [] args in
  let selected =
    match args with
    | [] -> experiments
    | names ->
        List.filter_map
          (fun name ->
            match List.assoc_opt (String.lowercase_ascii name) experiments with
            | Some fn -> Some (name, fn)
            | None ->
                Printf.eprintf "unknown experiment %S (known: %s)\n" name
                  (String.concat ", " (List.map fst experiments));
                None)
          names
  in
  Printf.printf "lsdb experiment harness%s\n" (if !quick then " (quick mode)" else "");
  List.iter (fun (_, fn) -> fn ()) selected;
  write_json ();
  if !equivalence_failures > 0 then begin
    Printf.eprintf "FAIL: %d incremental/recompute equivalence mismatch(es)\n"
      !equivalence_failures;
    exit 1
  end;
  if !overhead_failures > 0 then begin
    Printf.eprintf "FAIL: %d kernel(s) exceed the %.0f%% observability budget\n"
      !overhead_failures overhead_limit_pct;
    exit 1
  end
