(* lsdb-browse: an interactive browser for loosely structured databases.

   All command logic lives in the Lsdb_shell library (so it is testable);
   this binary handles argument parsing, database selection and the REPL
   loop.

     dune exec bin/lsdb_browse.exe -- --demo music
     dune exec bin/lsdb_browse.exe -- facts.lsdb
     dune exec bin/lsdb_browse.exe -- --dir /path/to/durable-db *)

open Lsdb

let repl shell =
  print_endline "lsdb browser — type 'help' for commands, 'quit' to exit";
  print_string (Lsdb_shell.Shell.execute shell "stats");
  let rec loop () =
    print_string "lsdb> ";
    match read_line () with
    | exception End_of_file -> ()
    | exception Sys.Break ->
        (* Second Ctrl-C (or a Ctrl-C with no query in flight): leave the
           loop so every Fun.protect finalizer on the way out runs. *)
        print_newline ()
    | "quit" | "exit" -> ()
    | line -> (
        match Lsdb_shell.Shell.execute shell line with
        | output ->
            print_string output;
            loop ()
        | exception Sys.Break -> print_newline ())
  in
  loop ()

(* First Ctrl-C cancels the in-flight query cooperatively through its
   governor token (the query returns with a "cancelled after …" notice);
   a second one — or one with nothing running — raises [Sys.Break]. *)
let install_sigint shell =
  try
    Sys.set_signal Sys.sigint
      (Sys.Signal_handle
         (fun _ ->
           match Lsdb_shell.Shell.active_governor shell with
           | Some gov when not (Lsdb_exec.Governor.cancelled gov) ->
               Lsdb_exec.Governor.cancel gov
           | _ -> raise Sys.Break))
  with Invalid_argument _ | Sys_error _ -> ()

let drive ?limit ?shards ?domains ?journal ?deadline_ms ~closure_mode db command =
  (* Re-partition before anything queries: at this point no closure has
     been computed, so the reshard is pure heap work. Session-only, like
     --limit: never journaled. *)
  Option.iter (fun n -> Database.set_shards db n) shards;
  (* A session-only override of the composition chain bound: applied
     after any journal replay, never journaled itself. *)
  Option.iter (fun n -> Database.set_limit db n) limit;
  Database.set_closure_mode db closure_mode;
  let pool =
    match domains with
    | Some n when n > 1 ->
        let pool = Lsdb_exec.Pool.create ~domains:n in
        Database.set_pool db (Some pool);
        Some pool
    | _ -> None
  in
  (* The pool's worker domains must be joined on every exit path — a
     session killed by an exception (or a raising command) would
     otherwise leave them blocked on the queue forever. *)
  Fun.protect
    ~finally:(fun () ->
      Database.set_pool db None;
      Option.iter Lsdb_exec.Pool.shutdown pool)
    (fun () ->
      let shell = Lsdb_shell.Shell.create ?journal db in
      Lsdb_shell.Shell.set_deadline_ms shell deadline_ms;
      install_sigint shell;
      match command with
      | Some cmd -> print_string (Lsdb_shell.Shell.execute shell cmd)
      | None -> repl shell)

open Cmdliner

let file =
  let doc = "Fact file (text format, see Lsdb.Fact_file) to load." in
  Arg.(value & pos 0 (some string) None & info [] ~docv:"FILE" ~doc)

let demo =
  let doc =
    Printf.sprintf "Start from a built-in example database: %s."
      (String.concat ", " (List.map fst Lsdb_shell.Shell.demos))
  in
  Arg.(value & opt (some string) None & info [ "demo" ] ~docv:"NAME" ~doc)

let persistent_dir =
  let doc = "Open a durable database directory (snapshot + operation log)." in
  Arg.(value & opt (some string) None & info [ "dir" ] ~docv:"DIR" ~doc)

let command_line =
  let doc = "Execute one command instead of starting the REPL." in
  Arg.(value & opt (some string) None & info [ "c"; "command" ] ~docv:"CMD" ~doc)

let limit_flag =
  let doc =
    "Override the composition chain bound limit($(docv)) for this session \
     (not journaled; see the shell's 'limit' command)."
  in
  Arg.(value & opt (some int) None & info [ "limit" ] ~docv:"N" ~doc)

let domains =
  let doc =
    "Evaluate closure rounds and retraction waves across $(docv) domains \
     (1 = sequential). Results are identical either way."
  in
  Arg.(value & opt int 1 & info [ "domains" ] ~docv:"N" ~doc)

let shards_flag =
  let doc =
    "Hash-partition the fact heap by source entity into $(docv) shards; \
     closure, retraction and search then run shard-parallel on the domain \
     pool (pair with $(b,--domains)). Query results are identical at every \
     shard count. Session-only; flip at runtime with the shell's '.shards' \
     command."
  in
  Arg.(value & opt (some int) None & info [ "shards" ] ~docv:"N" ~doc)

let salvage =
  let doc =
    "Open the durable directory in salvage mode: truncate a torn log tail, \
     skip corrupt records, keep everything that still parses, and print a \
     recovery report. Without this flag corruption is a fatal error."
  in
  Arg.(value & flag & info [ "salvage" ] ~doc)

let metrics_file =
  let doc =
    "Enable timed instrumentation and, on exit (normal or not), write the \
     metrics registry in Prometheus text format to $(docv)."
  in
  Arg.(value & opt (some string) None & info [ "metrics" ] ~docv:"FILE" ~doc)

let slow_ms =
  let doc =
    "Enable query tracing and keep a slowlog of queries at least $(docv) \
     milliseconds long; the slowlog is printed to stderr on exit."
  in
  Arg.(value & opt (some float) None & info [ "slow-ms" ] ~docv:"MS" ~doc)

let deadline_ms_flag =
  let doc =
    "Per-query wall deadline in milliseconds: a query exceeding it stops \
     early with a warning and sound partial answers (see the shell's \
     '.deadline' and '.budget' commands)."
  in
  Arg.(value & opt (some float) None & info [ "deadline-ms" ] ~docv:"MS" ~doc)

let closure_flag =
  let mode =
    Arg.enum [ ("eager", Database.Eager); ("demand", Database.Demand) ]
  in
  let doc =
    "Closure mode. $(b,eager) materializes the full inference closure up \
     front (amortized over many queries); $(b,demand) derives only the cone \
     of facts each query can touch (magic sets), which makes cold starts on \
     large heaps fast. Answers are identical in both modes. Defaults to \
     $(b,demand) when opening a durable directory with $(b,--dir) (cold \
     opens), $(b,eager) otherwise; flip at runtime with the shell's \
     '.closure' command."
  in
  Arg.(value & opt (some mode) None & info [ "closure" ] ~docv:"MODE" ~doc)

let rec main file demo dir command domains shards salvage metrics_file slow_ms
    limit closure deadline_ms =
  (match metrics_file with
  | Some _ -> Lsdb_obs.Metrics.set_enabled true
  | None -> ());
  (match slow_ms with
  | Some ms ->
      Lsdb_obs.Metrics.set_enabled true;
      Lsdb_obs.Trace.set_enabled true;
      Lsdb_obs.Trace.set_slow_threshold (Float.max 0. ms /. 1e3)
  | None -> ());
  Fun.protect ~finally:(fun () ->
      (match metrics_file with
      | Some path ->
          let oc = open_out path in
          output_string oc (Lsdb_obs.Metrics.expose ());
          close_out oc
      | None -> ());
      match slow_ms with
      | None -> ()
      | Some _ ->
          List.iter
            (fun p -> prerr_string (Lsdb_obs.Trace.render p))
            (List.rev (Lsdb_obs.Trace.slowlog ())))
  @@ fun () ->
  run file demo dir command domains shards salvage limit closure deadline_ms

and run file demo dir command domains shards salvage limit closure deadline_ms =
  (* Demand is the default for --dir cold opens (the heap may be far
     larger than anything this session will query); in-memory sessions
     default to eager, the long-standing behavior. *)
  let closure_mode ~default = Option.value closure ~default in
  match (demo, dir) with
  | Some name, _ -> (
      match List.assoc_opt name Lsdb_shell.Shell.demos with
      | Some build ->
          drive ?limit ?shards ~domains ?deadline_ms
            ~closure_mode:(closure_mode ~default:Database.Eager)
            (build ()) command;
          0
      | None ->
          Printf.eprintf "unknown demo %S (known: %s)\n" name
            (String.concat ", " (List.map fst Lsdb_shell.Shell.demos));
          1)
  | None, Some dir -> (
      let recovery = if salvage then `Salvage else `Strict in
      match Lsdb_storage.Persistent.open_dir ~recovery dir with
      | exception Failure msg ->
          Printf.eprintf "%s\n" msg;
          1
      | p ->
          let report = Lsdb_storage.Persistent.recovery_report p in
          if not (Lsdb_storage.Recovery_report.is_clean report) then
            print_endline (Lsdb_storage.Recovery_report.to_string report);
          let db = Lsdb_storage.Persistent.database p in
          (* Shell commands mutate [db] directly; journal each successful
             mutation so it survives in the operation log. *)
          let journal mutation =
            let open Lsdb_storage in
            let names f = Fact.names (Database.symtab db) f in
            Persistent.journal p
              (match mutation with
              | Lsdb_shell.Shell.Inserted f ->
                  let s, r, t = names f in
                  Log.Insert (s, r, t)
              | Lsdb_shell.Shell.Removed f ->
                  let s, r, t = names f in
                  Log.Remove (s, r, t)
              | Lsdb_shell.Shell.Rule_included name -> Log.Include_rule name
              | Lsdb_shell.Shell.Rule_excluded name -> Log.Exclude_rule name
              | Lsdb_shell.Shell.Limit_set n -> Log.Set_limit n)
          in
          (* [close] both releases the store and syncs any buffered log
             tail — it must run even when the session dies mid-command. *)
          Fun.protect
            ~finally:(fun () -> Lsdb_storage.Persistent.close p)
            (fun () ->
              drive ?limit ?shards ~domains ~journal ?deadline_ms
                ~closure_mode:(closure_mode ~default:Database.Demand)
                db command);
          0)
  | None, None -> (
      let db = Database.create () in
      match
        match file with
        | Some path -> ( try Ok (Fact_file.load_file db path) with e -> Error e)
        | None -> Ok 0
      with
      | Ok n ->
          if n > 0 then Printf.printf "loaded %d facts from %s\n" n (Option.get file);
          drive ?limit ?shards ~domains ?deadline_ms
            ~closure_mode:(closure_mode ~default:Database.Eager)
            db command;
          0
      | Error (Fact_file.Syntax_error { line; message }) ->
          Printf.eprintf "%s:%d: %s\n" (Option.get file) line message;
          1
      | Error e ->
          Printf.eprintf "%s\n" (Printexc.to_string e);
          1)

let cmd =
  let doc = "browse a loosely structured database (Motro, SIGMOD 1984)" in
  let info = Cmd.info "lsdb-browse" ~version:"1.0.0" ~doc in
  Cmd.v info
    Term.(
      const main $ file $ demo $ persistent_dir $ command_line $ domains
      $ shards_flag $ salvage $ metrics_file $ slow_ms $ limit_flag
      $ closure_flag $ deadline_ms_flag)

let () = exit (Cmd.eval' cmd)
